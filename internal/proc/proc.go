// Package proc simulates the process substrate beneath INSPECTOR's
// threads-as-processes design (§V-A). The real library intercepts
// pthread_create and issues clone() to fork a process that shares file
// descriptors and signal handlers with its parent but owns a private
// address space. Here a Process couples a PID with a private mem.Space
// over the shared backings and a virtual-time clock; the Table hands out
// PIDs and tracks liveness.
//
// Process creation cost matters to the evaluation: the paper attributes
// kmeans's slowdown to it creating over 400 short-lived threads, each of
// which INSPECTOR must fork as a process ("creating a process takes more
// time than creating a thread", §VII-A). The caller charges
// vtime.CostModel.ProcessSpawn or ThreadSpawn accordingly.
package proc

import (
	"fmt"
	"sort"
	"sync"

	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/vtime"
)

// Process is one simulated process (an INSPECTOR "thread").
type Process struct {
	// PID is the process id.
	PID int32
	// Parent is the PID of the creating process (0 for the initial one).
	Parent int32
	// Name is the comm value reported to perf.
	Name string
	// Space is the process's private view of shared memory.
	Space *mem.Space
	// Clock is the process's virtual-time clock.
	Clock *vtime.Clock
	// Slot is the dense thread index (0..T-1) used for vector clocks.
	Slot int
}

// Table allocates PIDs and tracks live processes. It is safe for
// concurrent use.
type Table struct {
	mu      sync.Mutex
	nextPID int32
	procs   map[int32]*Process
	spawned uint64
	exited  uint64
}

// NewTable creates a table; PIDs start at firstPID (conventionally 1000,
// keeping them visually distinct from thread slots).
func NewTable(firstPID int32) *Table {
	if firstPID <= 0 {
		firstPID = 1
	}
	return &Table{nextPID: firstPID, procs: make(map[int32]*Process)}
}

// SpawnConfig carries everything needed to create a process.
type SpawnConfig struct {
	Parent   int32
	Name     string
	Slot     int
	Backings []*mem.Backing
	Handler  mem.FaultHandler
	// Tracking selects INSPECTOR mode (protected private space) versus
	// native mode (direct shared access).
	Tracking bool
	// ClockOrigin is the child's starting virtual time (the parent's
	// clock at the spawn point).
	ClockOrigin vtime.Cycles
}

// Spawn clones a new process.
func (t *Table) Spawn(cfg SpawnConfig) *Process {
	t.mu.Lock()
	pid := t.nextPID
	t.nextPID++
	t.spawned++
	p := &Process{
		PID:    pid,
		Parent: cfg.Parent,
		Name:   cfg.Name,
		Slot:   cfg.Slot,
		Clock:  vtime.NewClock(cfg.ClockOrigin),
	}
	t.procs[pid] = p
	t.mu.Unlock()
	p.Space = mem.NewSpace(pid, cfg.Backings, cfg.Handler, cfg.Tracking)
	return p
}

// Exit removes a process from the table.
func (t *Table) Exit(pid int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.procs[pid]; ok {
		delete(t.procs, pid)
		t.exited++
	}
}

// Get returns the process with the given pid.
func (t *Table) Get(pid int32) (*Process, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	return p, ok
}

// Live returns the number of live processes.
func (t *Table) Live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.procs)
}

// Spawned returns the cumulative process creation count (the statistic
// behind kmeans's overhead in Figure 5).
func (t *Table) Spawned() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spawned
}

// Exited returns the cumulative exit count.
func (t *Table) Exited() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exited
}

// PIDs returns live PIDs in ascending order.
func (t *Table) PIDs() []int32 {
	t.mu.Lock()
	out := make([]int32, 0, len(t.procs))
	for pid := range t.procs {
		out = append(out, pid)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the process for logs.
func (p *Process) String() string {
	return fmt.Sprintf("proc(pid=%d slot=%d %q)", p.PID, p.Slot, p.Name)
}
