package proc

import (
	"sync"
	"testing"

	"github.com/repro/inspector/internal/mem"
)

func testBackings(t *testing.T) []*mem.Backing {
	t.Helper()
	b, err := mem.NewBacking("heap", 0x10000, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return []*mem.Backing{b}
}

func TestSpawnAssignsPIDs(t *testing.T) {
	tbl := NewTable(1000)
	bks := testBackings(t)
	p1 := tbl.Spawn(SpawnConfig{Name: "main", Backings: bks, Tracking: true})
	p2 := tbl.Spawn(SpawnConfig{Parent: p1.PID, Name: "w1", Slot: 1, Backings: bks, Tracking: true})
	if p1.PID != 1000 || p2.PID != 1001 {
		t.Errorf("pids = %d, %d", p1.PID, p2.PID)
	}
	if p2.Parent != p1.PID {
		t.Errorf("parent = %d", p2.Parent)
	}
	if tbl.Live() != 2 || tbl.Spawned() != 2 {
		t.Errorf("live=%d spawned=%d", tbl.Live(), tbl.Spawned())
	}
}

func TestSpawnClockOrigin(t *testing.T) {
	tbl := NewTable(1)
	p := tbl.Spawn(SpawnConfig{Name: "x", Backings: testBackings(t), ClockOrigin: 500})
	if p.Clock.Now() != 500 {
		t.Errorf("child clock = %d, want parent origin 500", p.Clock.Now())
	}
	if p.Clock.Work() != 0 {
		t.Errorf("child clock work = %d, want 0", p.Clock.Work())
	}
}

func TestSpacesAreIsolated(t *testing.T) {
	tbl := NewTable(1)
	bks := testBackings(t)
	p1 := tbl.Spawn(SpawnConfig{Name: "a", Backings: bks, Tracking: true})
	p2 := tbl.Spawn(SpawnConfig{Name: "b", Slot: 1, Backings: bks, Tracking: true})
	if _, err := p1.Space.StoreU64(0x10000, 7); err != nil {
		t.Fatal(err)
	}
	v, err := p2.Space.LoadU64(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("p2 saw p1's uncommitted write: %d", v)
	}
}

func TestExitAndGet(t *testing.T) {
	tbl := NewTable(1)
	p := tbl.Spawn(SpawnConfig{Name: "x", Backings: testBackings(t)})
	if got, ok := tbl.Get(p.PID); !ok || got != p {
		t.Fatal("Get failed")
	}
	tbl.Exit(p.PID)
	if _, ok := tbl.Get(p.PID); ok {
		t.Error("process still visible after exit")
	}
	if tbl.Live() != 0 || tbl.Exited() != 1 {
		t.Errorf("live=%d exited=%d", tbl.Live(), tbl.Exited())
	}
	tbl.Exit(p.PID) // double exit is harmless
	if tbl.Exited() != 1 {
		t.Error("double exit counted twice")
	}
}

func TestPIDsSorted(t *testing.T) {
	tbl := NewTable(10)
	bks := testBackings(t)
	for i := 0; i < 5; i++ {
		tbl.Spawn(SpawnConfig{Name: "w", Slot: i, Backings: bks})
	}
	pids := tbl.PIDs()
	if len(pids) != 5 {
		t.Fatalf("pids = %v", pids)
	}
	for i := 1; i < len(pids); i++ {
		if pids[i] <= pids[i-1] {
			t.Errorf("pids not sorted: %v", pids)
		}
	}
}

func TestConcurrentSpawn(t *testing.T) {
	tbl := NewTable(1)
	bks := testBackings(t)
	var wg sync.WaitGroup
	const n = 50
	pids := make([]int32, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pids[i] = tbl.Spawn(SpawnConfig{Name: "w", Slot: i, Backings: bks}).PID
		}(i)
	}
	wg.Wait()
	seen := make(map[int32]bool)
	for _, pid := range pids {
		if seen[pid] {
			t.Fatalf("duplicate pid %d", pid)
		}
		seen[pid] = true
	}
	if tbl.Spawned() != n {
		t.Errorf("spawned = %d", tbl.Spawned())
	}
}

func TestDefaultFirstPID(t *testing.T) {
	tbl := NewTable(0)
	p := tbl.Spawn(SpawnConfig{Name: "x", Backings: testBackings(t)})
	if p.PID != 1 {
		t.Errorf("pid = %d, want 1", p.PID)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}
