package lz4

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	c := Compress(nil, src)
	got, err := Decompress(nil, c, 0)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
	return c
}

func TestRoundTripEmpty(t *testing.T) {
	c := roundTrip(t, nil)
	if len(c) != 1 {
		t.Errorf("empty compresses to %d bytes", len(c))
	}
}

func TestRoundTripShort(t *testing.T) {
	roundTrip(t, []byte("a"))
	roundTrip(t, []byte("hello"))
	roundTrip(t, []byte("hello world, hello world"))
}

func TestRoundTripHighlyRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("TNTTNTTIP."), 10000)
	c := roundTrip(t, src)
	ratio := float64(len(src)) / float64(len(c))
	if ratio < 20 {
		t.Errorf("repetitive ratio = %.1f, want > 20", ratio)
	}
}

func TestRoundTripAllZero(t *testing.T) {
	src := make([]byte, 1<<16)
	c := roundTrip(t, src)
	if len(c) > 1024 {
		t.Errorf("zeros compressed to %d bytes", len(c))
	}
}

func TestRoundTripRandomIncompressible(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 4096)
	r.Read(src)
	c := roundTrip(t, src)
	// Must not expand more than ~0.5% plus slack.
	if len(c) > len(src)+len(src)/64+16 {
		t.Errorf("random data expanded to %d bytes from %d", len(c), len(src))
	}
}

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	c := roundTrip(t, src)
	if _, ratio := Ratio(src); ratio < 5 {
		t.Errorf("text ratio = %.1f, want > 5", ratio)
	}
	_ = c
}

func TestRoundTripOverlappingMatches(t *testing.T) {
	// "aaaa..." forces matches that overlap their own output (offset 1).
	roundTrip(t, bytes.Repeat([]byte{'a'}, 1000))
	// RLE-style 2-byte period.
	roundTrip(t, bytes.Repeat([]byte{'a', 'b'}, 1000))
}

func TestRoundTripLongLiteralRuns(t *testing.T) {
	// > 255+15 literals exercises the multi-byte length encoding.
	r := rand.New(rand.NewSource(2))
	src := make([]byte, 300)
	r.Read(src)
	src = append(src, bytes.Repeat([]byte("ABCD"), 100)...)
	roundTrip(t, src)
}

func TestRoundTripLongMatches(t *testing.T) {
	// Match length > 255+15+4 exercises multi-byte match lengths.
	src := append([]byte("prefix-0123456789"), bytes.Repeat([]byte{'x'}, 2000)...)
	roundTrip(t, src)
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x10},                  // 1 literal promised, none present
		{0x01, 0x00},            // match with truncated offset
		{0x00, 0x00, 0x00},      // match at offset 0
		{0xF0, 0xFF},            // unterminated literal length
		{0x10, 'a', 0x05, 0x00}, // offset 5 beyond window of 1
	}
	for i, src := range cases {
		if _, err := Decompress(nil, src, 0); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
}

func TestDecompressSizeLimit(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 10000)
	c := Compress(nil, src)
	if _, err := Decompress(nil, c, 100); !errors.Is(err, ErrTooLarge) {
		t.Errorf("limit: err = %v, want ErrTooLarge", err)
	}
	if got, err := Decompress(nil, c, 10000); err != nil || len(got) != 10000 {
		t.Errorf("exact limit: len=%d err=%v", len(got), err)
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	prefix := []byte("HEADER")
	out := Compress(prefix, []byte("payload payload payload"))
	if !bytes.HasPrefix(out, prefix) {
		t.Error("Compress clobbered dst prefix")
	}
	got, err := Decompress([]byte("OUT:"), out[len(prefix):], 0)
	if err != nil || string(got) != "OUT:payload payload payload" {
		t.Errorf("decompress with prefix: %q %v", got, err)
	}
}

func TestRatioHelper(t *testing.T) {
	if n, r := Ratio(nil); n != 0 || r != 1 {
		t.Errorf("Ratio(nil) = %d, %f", n, r)
	}
	_, r := Ratio(bytes.Repeat([]byte{1}, 10000))
	if r < 50 {
		t.Errorf("constant ratio = %.1f", r)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(5000)
		src := make([]byte, n)
		switch kind % 3 {
		case 0: // random
			r.Read(src)
		case 1: // repetitive with small alphabet
			for i := range src {
				src[i] = byte(r.Intn(4))
			}
		case 2: // block repeats
			blk := make([]byte, 1+r.Intn(40))
			r.Read(blk)
			for i := range src {
				src[i] = blk[i%len(blk)]
			}
		}
		c := Compress(nil, src)
		got, err := Decompress(nil, c, 0)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressPTLike(b *testing.B) {
	// Synthesize something like a PT stream: long TNT runs + TIPs.
	r := rand.New(rand.NewSource(3))
	src := make([]byte, 1<<20)
	for i := 0; i < len(src); {
		if r.Intn(10) == 0 && i+3 < len(src) {
			src[i] = 0x4D
			src[i+1] = byte(r.Intn(16))
			src[i+2] = byte(r.Intn(4))
			i += 3
		} else {
			src[i] = byte(r.Intn(3)) * 0x54
			i++
		}
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(nil, src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := bytes.Repeat([]byte("provenance log data "), 50000)
	c := Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(nil, c, 0); err != nil {
			b.Fatal(err)
		}
	}
}
