// Package lz4 implements the LZ4 block format (compression and
// decompression) in pure Go. The paper reports that the provenance log
// "turns out to be highly compressible — we were able to achieve a
// compression ratio of between 6x and 37x using the lz4 compression
// algorithm" (§VII-D); Table 9's compressed-size column is regenerated
// with this package.
//
// The implementation follows the LZ4 block specification: a sequence of
// tokens, each describing a literal run and a match (offset + length)
// into the previously decoded output. It favours clarity over speed but
// uses a real hash-chain matcher, so ratios are representative.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by Decompress.
var (
	ErrCorrupt  = errors.New("lz4: corrupt block")
	ErrTooLarge = errors.New("lz4: decoded size exceeds limit")
)

const (
	minMatch     = 4
	hashLog      = 16
	hashTableLen = 1 << hashLog
	maxOffset    = 65535
	// lastLiterals: the spec requires the final 5 bytes be literals and
	// matches must not start within 12 bytes of the end.
	lastLiterals = 5
	mfLimit      = 12
)

// hash4 hashes a 4-byte sequence to a table slot.
func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZ4 block compression of src to dst and returns
// the result. Incompressible input expands by at most ~0.4% + 16 bytes.
func Compress(dst, src []byte) []byte {
	n := len(src)
	if n == 0 {
		return append(dst, 0)
	}
	var table [hashTableLen]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	limit := n - mfLimit

	emitSequence := func(litStart, litEnd, matchOff, matchLen int) {
		litLen := litEnd - litStart
		token := byte(0)
		if litLen >= 15 {
			token = 0xF0
		} else {
			token = byte(litLen) << 4
		}
		ml := 0
		if matchLen > 0 {
			ml = matchLen - minMatch
			if ml >= 15 {
				token |= 0x0F
			} else {
				token |= byte(ml)
			}
		}
		dst = append(dst, token)
		if litLen >= 15 {
			for v := litLen - 15; ; v -= 255 {
				if v >= 255 {
					dst = append(dst, 255)
					continue
				}
				dst = append(dst, byte(v))
				break
			}
		}
		dst = append(dst, src[litStart:litEnd]...)
		if matchLen > 0 {
			var off [2]byte
			binary.LittleEndian.PutUint16(off[:], uint16(matchOff))
			dst = append(dst, off[:]...)
			if ml >= 15 {
				for v := ml - 15; ; v -= 255 {
					if v >= 255 {
						dst = append(dst, 255)
						continue
					}
					dst = append(dst, byte(v))
					break
				}
			}
		}
	}

	for i < limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := hash4(v)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || i-int(cand) > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != v {
			i++
			continue
		}
		// Extend the match forward.
		matchLen := minMatch
		for i+matchLen < n-lastLiterals && src[int(cand)+matchLen] == src[i+matchLen] {
			matchLen++
		}
		emitSequence(anchor, i, i-int(cand), matchLen)
		i += matchLen
		anchor = i
	}
	// Final literals-only sequence.
	emitSequence(anchor, n, 0, 0)
	return dst
}

// Decompress appends the decoded bytes of an LZ4 block to dst, refusing
// to grow beyond maxSize (0 means no limit). It returns the extended dst.
func Decompress(dst, src []byte, maxSize int) ([]byte, error) {
	base := len(dst)
	i := 0
	n := len(src)
	if n == 1 && src[0] == 0 {
		return dst, nil
	}
	readLen := func(initial int) (int, error) {
		v := initial
		if initial != 15 {
			return v, nil
		}
		for {
			if i >= n {
				return 0, fmt.Errorf("%w: truncated length", ErrCorrupt)
			}
			b := src[i]
			i++
			v += int(b)
			if b != 255 {
				return v, nil
			}
		}
	}
	for i < n {
		token := src[i]
		i++
		litLen, err := readLen(int(token >> 4))
		if err != nil {
			return dst, err
		}
		if i+litLen > n {
			return dst, fmt.Errorf("%w: literal run past end", ErrCorrupt)
		}
		if maxSize > 0 && len(dst)-base+litLen > maxSize {
			return dst, ErrTooLarge
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen
		if i >= n {
			// Final sequence has no match part.
			break
		}
		if i+2 > n {
			return dst, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		if offset == 0 || offset > len(dst)-base {
			return dst, fmt.Errorf("%w: offset %d out of window", ErrCorrupt, offset)
		}
		matchLen, err := readLen(int(token & 0x0F))
		if err != nil {
			return dst, err
		}
		matchLen += minMatch
		if maxSize > 0 && len(dst)-base+matchLen > maxSize {
			return dst, ErrTooLarge
		}
		// Byte-by-byte copy: matches may overlap their own output.
		pos := len(dst) - offset
		for j := 0; j < matchLen; j++ {
			dst = append(dst, dst[pos+j])
		}
	}
	return dst, nil
}

// Ratio compresses data and returns (compressedSize, ratio). A ratio of
// 10 means the input shrank 10x.
func Ratio(data []byte) (int, float64) {
	if len(data) == 0 {
		return 0, 1
	}
	c := Compress(nil, data)
	if len(c) == 0 {
		return 0, 1
	}
	return len(c), float64(len(data)) / float64(len(c))
}
