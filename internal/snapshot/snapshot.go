// Package snapshot implements INSPECTOR's live snapshot facility (§VI):
// periodic consistent cuts of the Concurrent Provenance Graph stored in a
// bounded ring of slots, so provenance can be analyzed on-the-fly while
// the program runs and the trace's space footprint stays bounded.
//
// A cut selects, for each thread, a prefix of its completed
// sub-computations. The cut is *consistent* (Chandy-Lamport [15]) iff for
// every synchronization edge release -> acquire, inclusion of the acquire
// implies inclusion of the release. Each thread nominates its latest
// completed synchronization event; the cut then retreats acquires whose
// releases are missing until the property holds (a monotone fixpoint, so
// it terminates).
//
// The PT side mirrors the paper's perf integration: in snapshot mode the
// AUX ring constantly overwrites old data, and the facility captures the
// current window per process into the slot (4 MiB by default), exactly
// like the SIGUSR2-triggered snapshot handler perf exposes.
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/vtime"
)

// DefaultSlotSize is the per-slot PT window budget (the paper's 4 MB).
const DefaultSlotSize = 4 << 20

// Cut is a consistent frontier: Frontier[t] = number of included
// sub-computations of thread t (a prefix length, not an index).
type Cut struct {
	// Seq is the synchronization sequence number that triggered the cut.
	Seq uint64
	// Time is the virtual time of capture.
	Time vtime.Cycles
	// Frontier maps thread slot -> included prefix length.
	Frontier map[int]uint64
}

// Contains reports whether the cut includes sub-computation id.
func (c *Cut) Contains(id core.SubID) bool {
	return id.Alpha < c.Frontier[id.Thread]
}

// Size returns the number of included sub-computations.
func (c *Cut) Size() int {
	var n uint64
	for _, f := range c.Frontier {
		n += f
	}
	return int(n)
}

// Snapshot is one captured slot: the consistent cut plus the PT windows.
type Snapshot struct {
	Cut Cut
	// Subs are the included sub-computations (copies of graph vertices).
	Subs []*core.SubComputation
	// SyncEdges are the schedule edges fully inside the cut.
	SyncEdges []core.Edge
	// Symbols is the graph's interned symbol table at capture time, so an
	// offline consumer can resolve the SiteRef/ObjRef fields the vertices
	// carry without the live graph.
	Symbols []string
	// PTWindows holds the captured AUX window per process.
	PTWindows map[int32][]byte
	// TruncatedPT reports PT bytes dropped to fit the slot budget.
	TruncatedPT uint64
}

// SiteName resolves an interned site ref against the captured symbols.
func (s *Snapshot) SiteName(ref core.SiteRef) string {
	if int(ref) >= len(s.Symbols) {
		return ""
	}
	return s.Symbols[ref]
}

// ObjectName resolves an interned object ref against the captured symbols.
func (s *Snapshot) ObjectName(ref core.ObjRef) string {
	if int(ref) >= len(s.Symbols) {
		return ""
	}
	return s.Symbols[ref]
}

// Bytes estimates the slot's storage footprint.
func (s *Snapshot) Bytes() int {
	n := 0
	for _, w := range s.PTWindows {
		n += len(w)
	}
	// Sub-computation metadata is small relative to PT data; count the
	// page sets at 8 bytes per page entry.
	for _, sc := range s.Subs {
		n += 8 * (sc.ReadSet.Len() + sc.WriteSet.Len())
	}
	return n
}

// Options configure a Snapshotter.
type Options struct {
	// Slots is the ring capacity (number of retained snapshots).
	// Default 4.
	Slots int
	// SlotSize caps PT bytes per snapshot. Default 4 MiB.
	SlotSize int
	// EverySyncs triggers an automatic snapshot each N synchronization
	// boundaries; 0 disables automatic capture (manual TakeSnapshot
	// only).
	EverySyncs uint64
}

// Source is the runtime surface the snapshotter needs; implemented by
// *threading.Runtime.
type Source interface {
	Graph() *core.Graph
	Session() *perf.Session
	SyncSeq() uint64
}

// Snapshotter owns the snapshot ring for one runtime.
type Snapshotter struct {
	src  Source
	opts Options

	mu    sync.Mutex
	ring  []*Snapshot
	next  int
	taken uint64
	clock func() vtime.Cycles
}

// ErrNoSource is returned when constructing without a runtime.
var ErrNoSource = errors.New("snapshot: nil source")

// New creates a snapshotter over the runtime. Pass the runtime's
// RegisterSnapshotHook output through Hook to enable automatic capture.
func New(src Source, opts Options) (*Snapshotter, error) {
	if src == nil {
		return nil, ErrNoSource
	}
	if opts.Slots <= 0 {
		opts.Slots = 4
	}
	if opts.SlotSize <= 0 {
		opts.SlotSize = DefaultSlotSize
	}
	return &Snapshotter{
		src:  src,
		opts: opts,
		ring: make([]*Snapshot, 0, opts.Slots),
	}, nil
}

// SetClock installs a virtual-time source for snapshot timestamps.
func (s *Snapshotter) SetClock(fn func() vtime.Cycles) { s.clock = fn }

// Hook returns the callback to register with the runtime's snapshot
// hooks: it captures automatically every EverySyncs boundaries.
func (s *Snapshotter) Hook() func() {
	return func() {
		if s.opts.EverySyncs == 0 {
			return
		}
		if s.src.SyncSeq()%s.opts.EverySyncs == 0 {
			s.TakeSnapshot()
		}
	}
}

// TakeSnapshot captures a consistent cut now and stores it in the ring,
// overwriting the oldest slot when full (the paper's reusable-slot ring).
func (s *Snapshotter) TakeSnapshot() *Snapshot {
	g := s.src.Graph()
	cut := ComputeCut(g)
	cut.Seq = s.src.SyncSeq()
	if s.clock != nil {
		cut.Time = s.clock()
	}

	snap := &Snapshot{Cut: cut, Symbols: g.Symbols(), PTWindows: make(map[int32][]byte)}
	for _, sc := range g.Subs() {
		if cut.Contains(sc.ID) {
			snap.Subs = append(snap.Subs, sc)
		}
	}
	for _, e := range g.SyncEdges() {
		if cut.Contains(e.From) && cut.Contains(e.To) {
			snap.SyncEdges = append(snap.SyncEdges, e)
		}
	}
	// Capture PT windows within the slot budget.
	budget := s.opts.SlotSize
	sess := s.src.Session()
	for _, pid := range sess.PIDs() {
		stream, ok := sess.Stream(pid)
		if !ok {
			continue
		}
		win := stream.Aux().SnapshotWindow()
		if len(win) > budget {
			snap.TruncatedPT += uint64(len(win) - budget)
			win = win[len(win)-budget:]
		}
		budget -= len(win)
		snap.PTWindows[pid] = win
		if budget <= 0 {
			break
		}
	}

	s.mu.Lock()
	if len(s.ring) < s.opts.Slots {
		s.ring = append(s.ring, snap)
	} else {
		s.ring[s.next%len(s.ring)] = snap
		s.next++
	}
	s.taken++
	s.mu.Unlock()
	return snap
}

// Snapshots returns the current ring contents, oldest first.
func (s *Snapshotter) Snapshots() []*Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Snapshot, 0, len(s.ring))
	if len(s.ring) < s.opts.Slots {
		out = append(out, s.ring...)
		return out
	}
	for i := 0; i < len(s.ring); i++ {
		out = append(out, s.ring[(s.next+i)%len(s.ring)])
	}
	return out
}

// Taken returns the cumulative snapshot count (including overwritten).
func (s *Snapshotter) Taken() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// ComputeCut builds a consistent cut from the graph's current state:
// start from every thread's full completed prefix, then retreat any
// acquire whose release lies outside the cut until the closure property
// holds.
func ComputeCut(g *core.Graph) Cut {
	frontier := make(map[int]uint64)
	for _, sc := range g.Subs() {
		if sc.ID.Alpha+1 > frontier[sc.ID.Thread] {
			frontier[sc.ID.Thread] = sc.ID.Alpha + 1
		}
	}
	edges := g.SyncEdges()
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			// Acquire included but release missing: retreat the
			// acquirer's frontier to exclude the acquire.
			if e.To.Alpha < frontier[e.To.Thread] && e.From.Alpha >= frontier[e.From.Thread] {
				frontier[e.To.Thread] = e.To.Alpha
				changed = true
			}
		}
	}
	return Cut{Frontier: frontier}
}

// Validate checks the Chandy-Lamport property of a cut against the
// graph: every included acquire's release is included.
func (c *Cut) Validate(g *core.Graph) error {
	for _, e := range g.SyncEdges() {
		if c.Contains(e.To) && !c.Contains(e.From) {
			return fmt.Errorf("snapshot: inconsistent cut: %v in cut but its release %v (object %s) is not",
				e.To, e.From, e.Object)
		}
	}
	return nil
}

// EncodeGob serializes a snapshot for offline analysis (the "user
// collects the snapshot and reuses the slot" flow of §VI).
func (s *Snapshot) EncodeGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// DecodeGob reads a snapshot serialized by EncodeGob.
func DecodeGob(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return &s, nil
}
