package snapshot

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/vtime"
)

// fakeSource drives the snapshotter without a full runtime.
type fakeSource struct {
	g    *core.Graph
	sess *perf.Session
	seq  uint64
}

func (f *fakeSource) Graph() *core.Graph     { return f.g }
func (f *fakeSource) Session() *perf.Session { return f.sess }
func (f *fakeSource) SyncSeq() uint64        { return f.seq }

// buildGraph makes a graph with a lock handoff T0 -> T1.
func buildGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := r0.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: g.InternObject("lock")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncAcquire, Object: g.InternObject("lock")}, 0); err != nil {
		t.Fatal(err)
	}
	r1.Acquire(lock)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestComputeCutConsistent(t *testing.T) {
	g := buildGraph(t)
	cut := ComputeCut(g)
	if err := cut.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Full graph is itself consistent here: everything included.
	if cut.Size() != g.NumSubs() {
		t.Errorf("cut size %d, want %d", cut.Size(), g.NumSubs())
	}
}

func TestCutRetreatsDanglingAcquire(t *testing.T) {
	// Build a graph where the acquirer's sub is recorded but the
	// releaser's is NOT (simulates capture racing a slow thread):
	// the cut must exclude the acquire.
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Forge a release from a sub-computation that is never added to the
	// graph (thread 0 hasn't completed it yet).
	ghost := &core.SubComputation{ID: core.SubID{Thread: 0, Alpha: 5}, Clock: nil}
	lockRelease(lock, ghost)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncAcquire, Object: g.InternObject("lock")}, 0); err != nil {
		t.Fatal(err)
	}
	r1.Acquire(lock)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	cut := ComputeCut(g)
	if err := cut.Validate(g); err != nil {
		t.Fatalf("cut not repaired: %v", err)
	}
	// The acquire at T1.1 must be excluded (its release T0.5 missing).
	if cut.Contains(core.SubID{Thread: 1, Alpha: 1}) {
		t.Error("dangling acquire included in cut")
	}
}

// lockRelease releases with a recorder-independent sub (test helper for
// forging incomplete release state).
func lockRelease(s *core.SyncObject, sub *core.SubComputation) {
	// Use a scratch recorder on a scratch graph to drive the release.
	g := core.NewGraph(8)
	r, err := core.NewRecorder(g, sub.ID.Thread, 0)
	if err != nil {
		panic(err)
	}
	if sub.Clock == nil {
		sub.Clock = r.Clock().Copy()
	}
	r.Release(s, sub)
}

func TestSnapshotterRing(t *testing.T) {
	g := buildGraph(t)
	src := &fakeSource{g: g, sess: perf.NewSession(perf.SessionOptions{Mode: perf.ModeSnapshot})}
	s, err := New(src, Options{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		src.seq = uint64(i)
		s.TakeSnapshot()
	}
	snaps := s.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("ring holds %d, want 2", len(snaps))
	}
	// Oldest-first: seqs 3, 4 after five captures into two slots.
	if snaps[0].Cut.Seq != 3 || snaps[1].Cut.Seq != 4 {
		t.Errorf("ring seqs = %d, %d; want 3, 4", snaps[0].Cut.Seq, snaps[1].Cut.Seq)
	}
	if s.Taken() != 5 {
		t.Errorf("Taken = %d", s.Taken())
	}
}

func TestSnapshotCapturesPTWindows(t *testing.T) {
	g := buildGraph(t)
	sess := perf.NewSession(perf.SessionOptions{Mode: perf.ModeSnapshot, AuxSize: 64})
	st, _ := sess.Attach(1)
	for i := 0; i < 30; i++ {
		st.WriteTrace([]byte{byte(i), byte(i + 1)})
	}
	src := &fakeSource{g: g, sess: sess}
	s, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.TakeSnapshot()
	if len(snap.PTWindows[1]) == 0 {
		t.Error("no PT window captured")
	}
	if len(snap.PTWindows[1]) > 64 {
		t.Errorf("window exceeds ring size: %d", len(snap.PTWindows[1]))
	}
	if snap.Bytes() == 0 {
		t.Error("zero snapshot size")
	}
}

func TestSnapshotSlotBudgetTruncates(t *testing.T) {
	g := buildGraph(t)
	sess := perf.NewSession(perf.SessionOptions{Mode: perf.ModeSnapshot, AuxSize: 1024})
	st, _ := sess.Attach(1)
	st.WriteTrace(make([]byte, 1024))
	src := &fakeSource{g: g, sess: sess}
	s, err := New(src, Options{SlotSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.TakeSnapshot()
	if snap.TruncatedPT == 0 {
		t.Error("expected truncation with tiny slot")
	}
	if len(snap.PTWindows[1]) != 100 {
		t.Errorf("window = %d bytes, want 100", len(snap.PTWindows[1]))
	}
}

func TestHookPeriodicCapture(t *testing.T) {
	g := buildGraph(t)
	src := &fakeSource{g: g, sess: perf.NewSession(perf.SessionOptions{})}
	s, err := New(src, Options{EverySyncs: 2})
	if err != nil {
		t.Fatal(err)
	}
	hook := s.Hook()
	for i := 1; i <= 6; i++ {
		src.seq = uint64(i)
		hook()
	}
	if s.Taken() != 3 {
		t.Errorf("hook captured %d snapshots, want 3 (every 2 of 6)", s.Taken())
	}
	// Disabled automatic capture:
	s2, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Hook()()
	if s2.Taken() != 0 {
		t.Error("hook captured despite EverySyncs=0")
	}
}

func TestEndToEndWithRuntime(t *testing.T) {
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    "snaptest",
		Mode:       threading.ModeInspector,
		MaxThreads: 4,
		TraceMode:  perf.ModeSnapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rt, Options{Slots: 3, EverySyncs: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(func() vtime.Cycles { return 0 })
	rt.RegisterSnapshotHook(s.Hook())

	base := rt.GlobalsBase()
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *threading.Thread) {
		child := main.Spawn(func(w *threading.Thread) {
			for i := 0; i < 10; i++ {
				m.Lock(w)
				w.Store64(base, uint64(i))
				m.Unlock(w)
			}
		})
		for i := 0; i < 10; i++ {
			m.Lock(main)
			_ = main.Load64(base)
			m.Unlock(main)
		}
		main.Join(child)
	}); err != nil {
		t.Fatal(err)
	}
	if s.Taken() == 0 {
		t.Fatal("no snapshots during run")
	}
	// Every retained snapshot's cut must be consistent against the final
	// graph.
	for i, snap := range s.Snapshots() {
		if err := snap.Cut.Validate(rt.Graph()); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
}

func TestQuickCutAlwaysConsistent(t *testing.T) {
	// Random executions, cuts taken at random prefixes of the recording:
	// ComputeCut must always produce a valid cut.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := core.NewGraph(3)
		recs := make([]*core.Recorder, 3)
		for i := range recs {
			rec, err := core.NewRecorder(g, i, 0)
			if err != nil {
				return false
			}
			recs[i] = rec
		}
		lock := g.NewSyncObject("l", false)
		held := -1
		for step := 0; step < 60; step++ {
			th := r.Intn(3)
			rec := recs[th]
			switch {
			case held == th:
				sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: g.InternObject("l")}, 0)
				if err != nil {
					return false
				}
				rec.Release(lock, sc)
				held = -1
			case held == -1 && r.Intn(2) == 0:
				if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncAcquire, Object: g.InternObject("l")}, 0); err != nil {
					return false
				}
				rec.Acquire(lock)
				held = th
			default:
				rec.OnWrite(uint64(r.Intn(8)))
			}
			// Take a cut at random points mid-execution.
			if r.Intn(10) == 0 {
				cut := ComputeCut(g)
				if cut.Validate(g) != nil {
					return false
				}
			}
		}
		cut := ComputeCut(g)
		return cut.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotGobRoundTrip(t *testing.T) {
	g := buildGraph(t)
	sess := perf.NewSession(perf.SessionOptions{Mode: perf.ModeSnapshot, AuxSize: 64})
	st, _ := sess.Attach(1)
	st.WriteTrace([]byte{1, 2, 3})
	src := &fakeSource{g: g, sess: sess, seq: 9}
	s, err := New(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.TakeSnapshot()

	var buf bytes.Buffer
	if err := snap.EncodeGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cut.Seq != 9 || len(got.Subs) != len(snap.Subs) {
		t.Errorf("round trip: seq=%d subs=%d", got.Cut.Seq, len(got.Subs))
	}
	if string(got.PTWindows[1]) != string(snap.PTWindows[1]) {
		t.Error("PT window lost in round trip")
	}
	// The cut must still validate against the original graph.
	if err := got.Cut.Validate(g); err != nil {
		t.Error(err)
	}
}
