// Package cgroup simulates the two Linux control-group controllers
// INSPECTOR depends on (§V-B, §VII):
//
//   - perf_event: the paper creates a cgroup exclusively for the traced
//     application because the threading library turns threads into
//     processes whose PIDs are not known in advance; membership is
//     inherited across fork, so every forked "thread" is captured by the
//     same PT trace session.
//   - cpuacct: the paper measures its "work" metric (total CPU
//     utilization over all threads) with the CPU accounting controller.
//
// The simulation keeps the same semantics: a hierarchy of named groups,
// processes that belong to exactly one group, children inheriting the
// parent's group at fork, hierarchical usage accounting, and descendant
// matching for event filters.
package cgroup

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/repro/inspector/internal/vtime"
)

// Errors returned by hierarchy operations.
var (
	ErrExists   = errors.New("cgroup: group already exists")
	ErrNotFound = errors.New("cgroup: no such group")
	ErrBadPath  = errors.New("cgroup: invalid path")
)

// Hierarchy is one cgroup tree (think one mounted controller hierarchy).
type Hierarchy struct {
	mu     sync.RWMutex
	groups map[string]*Group
	procs  map[int32]*Group
}

// Group is one control group.
type Group struct {
	h      *Hierarchy
	path   string
	parent *Group

	mu    sync.Mutex
	usage vtime.Cycles // cpuacct.usage, hierarchical
	procs map[int32]struct{}
}

// NewHierarchy creates a hierarchy containing only the root group "/".
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		groups: make(map[string]*Group),
		procs:  make(map[int32]*Group),
	}
	root := &Group{h: h, path: "/", procs: make(map[int32]struct{})}
	h.groups["/"] = root
	return h
}

// Root returns the root group.
func (h *Hierarchy) Root() *Group {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.groups["/"]
}

// normalize validates and canonicalizes a group path.
func normalize(path string) (string, error) {
	if path == "" || path[0] != '/' {
		return "", fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, path)
	}
	if path == "/" {
		return "/", nil
	}
	path = strings.TrimRight(path, "/")
	for _, seg := range strings.Split(path[1:], "/") {
		if seg == "" || seg == "." || seg == ".." {
			return "", fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return path, nil
}

// Create makes a new group at path; all intermediate groups must already
// exist (like mkdir without -p).
func (h *Hierarchy) Create(path string) (*Group, error) {
	path, err := normalize(path)
	if err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, fmt.Errorf("%w: /", ErrExists)
	}
	parentPath := path[:strings.LastIndex(path, "/")]
	if parentPath == "" {
		parentPath = "/"
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.groups[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	parent, ok := h.groups[parentPath]
	if !ok {
		return nil, fmt.Errorf("%w: parent %s", ErrNotFound, parentPath)
	}
	g := &Group{h: h, path: path, parent: parent, procs: make(map[int32]struct{})}
	h.groups[path] = g
	return g, nil
}

// Lookup returns the group at path.
func (h *Hierarchy) Lookup(path string) (*Group, error) {
	path, err := normalize(path)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	g, ok := h.groups[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return g, nil
}

// GroupOf returns the group a process belongs to (root if never placed).
func (h *Hierarchy) GroupOf(pid int32) *Group {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if g, ok := h.procs[pid]; ok {
		return g
	}
	return h.groups["/"]
}

// Fork places child in parent's group — the inheritance property the
// paper's design exploits: "by default every child process belongs to the
// same [group] as its parent".
func (h *Hierarchy) Fork(parentPID, childPID int32) {
	g := h.GroupOf(parentPID)
	g.AddProcess(childPID)
}

// Exit removes a process from the hierarchy.
func (h *Hierarchy) Exit(pid int32) {
	h.mu.Lock()
	g, ok := h.procs[pid]
	if ok {
		delete(h.procs, pid)
	}
	h.mu.Unlock()
	if ok {
		g.mu.Lock()
		delete(g.procs, pid)
		g.mu.Unlock()
	}
}

// Path returns the group's absolute path.
func (g *Group) Path() string { return g.path }

// AddProcess moves a process into this group (removing it from its
// previous group).
func (g *Group) AddProcess(pid int32) {
	h := g.h
	h.mu.Lock()
	prev := h.procs[pid]
	h.procs[pid] = g
	h.mu.Unlock()
	if prev != nil && prev != g {
		prev.mu.Lock()
		delete(prev.procs, pid)
		prev.mu.Unlock()
	}
	g.mu.Lock()
	g.procs[pid] = struct{}{}
	g.mu.Unlock()
}

// Procs returns the PIDs directly in this group, sorted.
func (g *Group) Procs() []int32 {
	g.mu.Lock()
	out := make([]int32, 0, len(g.procs))
	for pid := range g.procs {
		out = append(out, pid)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether pid belongs to this group or any descendant —
// the matching rule perf uses for cgroup-scoped events.
func (g *Group) Contains(pid int32) bool {
	cur := g.h.GroupOf(pid)
	for cur != nil {
		if cur == g {
			return true
		}
		cur = cur.parent
	}
	return false
}

// IsDescendantOf reports whether g is anc or below it.
func (g *Group) IsDescendantOf(anc *Group) bool {
	for cur := g; cur != nil; cur = cur.parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// ChargeCPU adds CPU usage to this group and all ancestors (cpuacct is
// hierarchical).
func (g *Group) ChargeCPU(c vtime.Cycles) {
	for cur := g; cur != nil; cur = cur.parent {
		cur.mu.Lock()
		cur.usage += c
		cur.mu.Unlock()
	}
}

// CPUUsage returns the hierarchical usage (cpuacct.usage equivalent).
func (g *Group) CPUUsage() vtime.Cycles {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.usage
}
