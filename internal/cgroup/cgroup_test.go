package cgroup

import (
	"errors"
	"sync"
	"testing"
)

func TestRootExists(t *testing.T) {
	h := NewHierarchy()
	if h.Root() == nil || h.Root().Path() != "/" {
		t.Fatal("root group missing")
	}
}

func TestCreateAndLookup(t *testing.T) {
	h := NewHierarchy()
	g, err := h.Create("/inspector")
	if err != nil {
		t.Fatal(err)
	}
	if g.Path() != "/inspector" {
		t.Errorf("path = %q", g.Path())
	}
	got, err := h.Lookup("/inspector")
	if err != nil || got != g {
		t.Errorf("Lookup = %v, %v", got, err)
	}
}

func TestCreateNested(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Create("/a"); err != nil {
		t.Fatal(err)
	}
	b, err := h.Create("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsDescendantOf(h.Root()) {
		t.Error("b not descendant of root")
	}
	a, _ := h.Lookup("/a")
	if !b.IsDescendantOf(a) {
		t.Error("b not descendant of a")
	}
	if a.IsDescendantOf(b) {
		t.Error("a wrongly descendant of b")
	}
}

func TestCreateErrors(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Create("/x/y"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing parent: %v", err)
	}
	if _, err := h.Create("relative"); !errors.Is(err, ErrBadPath) {
		t.Errorf("relative path: %v", err)
	}
	if _, err := h.Create("/"); !errors.Is(err, ErrExists) {
		t.Errorf("recreate root: %v", err)
	}
	if _, err := h.Create("/a//b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("empty segment: %v", err)
	}
	if _, err := h.Create("/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("dotdot segment: %v", err)
	}
	h.Create("/dup")
	if _, err := h.Create("/dup"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := h.Lookup("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup missing: %v", err)
	}
}

func TestProcessMembership(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("/app")
	g.AddProcess(100)
	if got := h.GroupOf(100); got != g {
		t.Errorf("GroupOf(100) = %v", got.Path())
	}
	// Unknown process defaults to root.
	if got := h.GroupOf(999); got != h.Root() {
		t.Errorf("GroupOf(999) = %v", got.Path())
	}
	// Moving between groups removes from the old one.
	g2, _ := h.Create("/other")
	g2.AddProcess(100)
	if len(g.Procs()) != 0 {
		t.Errorf("old group still holds %v", g.Procs())
	}
	if got := g2.Procs(); len(got) != 1 || got[0] != 100 {
		t.Errorf("new group procs = %v", got)
	}
}

func TestForkInheritance(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("/app")
	g.AddProcess(1)
	h.Fork(1, 2)
	h.Fork(2, 3)
	for _, pid := range []int32{1, 2, 3} {
		if h.GroupOf(pid) != g {
			t.Errorf("pid %d not in /app", pid)
		}
	}
	// This is the property the paper relies on: all forked "threads"
	// stay inside the trace filter group.
	for _, pid := range []int32{1, 2, 3} {
		if !g.Contains(pid) {
			t.Errorf("Contains(%d) = false", pid)
		}
	}
}

func TestContainsDescendants(t *testing.T) {
	h := NewHierarchy()
	parent, _ := h.Create("/p")
	child, _ := h.Create("/p/c")
	child.AddProcess(5)
	if !parent.Contains(5) {
		t.Error("parent filter must match processes in child groups")
	}
	if !child.Contains(5) {
		t.Error("child must contain its own process")
	}
	other, _ := h.Create("/q")
	if other.Contains(5) {
		t.Error("unrelated group matched")
	}
}

func TestExit(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("/app")
	g.AddProcess(7)
	h.Exit(7)
	if len(g.Procs()) != 0 {
		t.Errorf("procs after exit = %v", g.Procs())
	}
	if h.GroupOf(7) != h.Root() {
		t.Error("exited process should default to root")
	}
	// Exiting an unknown pid is harmless.
	h.Exit(12345)
}

func TestCPUAccountingHierarchical(t *testing.T) {
	h := NewHierarchy()
	a, _ := h.Create("/a")
	b, _ := h.Create("/a/b")
	b.ChargeCPU(100)
	a.ChargeCPU(50)
	if got := b.CPUUsage(); got != 100 {
		t.Errorf("b usage = %d, want 100", got)
	}
	if got := a.CPUUsage(); got != 150 {
		t.Errorf("a usage = %d, want 150 (hierarchical)", got)
	}
	if got := h.Root().CPUUsage(); got != 150 {
		t.Errorf("root usage = %d, want 150", got)
	}
}

func TestProcsSorted(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("/app")
	for _, pid := range []int32{30, 10, 20} {
		g.AddProcess(pid)
	}
	got := g.Procs()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("Procs = %v, want sorted", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("/app")
	g.AddProcess(0)
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(pid int32) {
			defer wg.Done()
			h.Fork(0, pid)
			g.ChargeCPU(10)
			_ = g.Contains(pid)
			_ = h.GroupOf(pid)
		}(int32(i))
	}
	wg.Wait()
	if got := len(g.Procs()); got != 33 {
		t.Errorf("procs = %d, want 33", got)
	}
	if got := g.CPUUsage(); got != 320 {
		t.Errorf("usage = %d, want 320", got)
	}
}

func TestNormalizeTrailingSlash(t *testing.T) {
	h := NewHierarchy()
	if _, err := h.Create("/app"); err != nil {
		t.Fatal(err)
	}
	g, err := h.Lookup("/app/")
	if err != nil || g.Path() != "/app" {
		t.Errorf("trailing slash lookup: %v %v", g, err)
	}
}
