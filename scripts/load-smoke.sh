#!/usr/bin/env bash
# Distributed-fabric load smoke: M streaming recorder processes push
# epoch deltas at one aggregator while N query/watch client processes
# hammer it, then every source's aggregator export is diffed against the
# recorder's own journal replay. The pass criteria are the fabric
# contract — zero dropped epochs (every source sealed at its journal's
# final epoch) and byte-identical exports — plus the in-process soak
# (internal/harness/loadtest) for throughput/latency numbers.
#
# Run from the repository root: ./scripts/load-smoke.sh [M] [N]
set -euo pipefail

recorders=${1:-2}
clients=${2:-4}

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/inspector-run" ./cmd/inspector-run
go build -o "$workdir/inspector-serve" ./cmd/inspector-serve
go build -o "$workdir/inspector-recover" ./cmd/inspector-recover
go build -o "$workdir/cpg-query" ./cmd/cpg-query

"$workdir/inspector-serve" -ingest -ingest-sources $((recorders + 4)) \
  -addr 127.0.0.1:0 >"$workdir/serve.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/serve.log" | head -n 1)
  if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "load-smoke: aggregator never became ready" >&2; cat "$workdir/serve.log" >&2; exit 1; }

# M recorders, distinct workloads/seeds, each journaled (the ground
# truth) and streamed (the thing under test) at the same epoch cadence.
apps=(histogram word_count matrix_multiply string_match kmeans linear_regression)
rec_pids=()
sources=()
for i in $(seq 0 $((recorders - 1))); do
  app=${apps[$((i % ${#apps[@]}))]}
  seed=$((100 + i))
  src="rec$i-$app"
  sources+=("$src")
  "$workdir/inspector-run" -app "$app" -threads 2 -size small -seed "$seed" \
    -journal "$workdir/j$i" -stream "http://$addr" -stream-id "$src" \
    >"$workdir/rec$i.out" 2>&1 &
  rec_pids+=($!)
done

# N clients: watchers ride the epoch push until their source seals,
# the rest poll stats in a loop. They start alongside the recorders —
# sources that are not bound yet answer 404, which is part of the load.
cli_pids=()
for i in $(seq 0 $((clients - 1))); do
  src=${sources[$((i % recorders))]}
  if [ $((i % 2)) -eq 0 ]; then
    (
      for _ in $(seq 1 200); do
        if "$workdir/cpg-query" -remote "http://$addr" -id "$src" watch \
          >"$workdir/watch$i.out" 2>/dev/null; then
          exit 0
        fi
        sleep 0.05
      done
      exit 1
    ) &
  else
    (
      while kill -0 "${rec_pids[0]}" 2>/dev/null; do
        "$workdir/cpg-query" -remote "http://$addr" -id "$src" stats >/dev/null 2>&1 || true
      done
    ) &
  fi
  cli_pids+=($!)
done

for i in $(seq 0 $((recorders - 1))); do
  wait "${rec_pids[$i]}" || {
    echo "load-smoke: recorder $i failed" >&2
    cat "$workdir/rec$i.out" >&2
    exit 1
  }
  grep -q 'epochs shipped' "$workdir/rec$i.out" || {
    echo "load-smoke: recorder $i never shipped its stream" >&2
    cat "$workdir/rec$i.out" >&2
    exit 1
  }
done

for pid in "${cli_pids[@]}"; do
  wait "$pid" || { echo "load-smoke: a client process failed" >&2; exit 1; }
done
for i in $(seq 0 $((clients - 1))); do
  if [ $((i % 2)) -eq 0 ]; then
    grep -q 'closed' "$workdir/watch$i.out" || {
      echo "load-smoke: watcher $i never saw its source close" >&2
      cat "$workdir/watch$i.out" >&2
      exit 1
    }
  fi
done

# The contract: every source sealed at the journal's final epoch, with
# byte-identical analysis bytes.
for i in $(seq 0 $((recorders - 1))); do
  src=${sources[$i]}
  epoch=$("$workdir/inspector-recover" -journal "$workdir/j$i" -summary-json |
    sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
  offset=$(curl -fsS "http://$addr/v1/ingest/$src")
  echo "$offset" | grep -q '"sealed": true' || {
    echo "load-smoke: source $src not sealed: $offset" >&2; exit 1;
  }
  echo "$offset" | grep -q "\"next_epoch\": $((epoch + 1))" || {
    echo "load-smoke: source $src dropped epochs (journal holds $epoch): $offset" >&2; exit 1;
  }
  "$workdir/inspector-recover" -journal "$workdir/j$i" -q -analysis "$workdir/ref$i.json"
  curl -fsS "http://$addr/v1/cpgs/$src/export" >"$workdir/agg$i.json"
  diff -u "$workdir/ref$i.json" "$workdir/agg$i.json" || {
    echo "load-smoke: source $src aggregator export diverges from its journal" >&2
    exit 1
  }
  echo "load-smoke: $src sealed at epoch $epoch, export byte-identical"
done

# Throughput/latency numbers come from the in-process soak, which holds
# itself to the same contract on every iteration.
go run ./cmd/inspector-bench -experiment fabric -out - | tail -n 40

echo "load-smoke: $recorders recorders x $clients clients passed (zero dropped epochs, byte-identical exports)"
