// Command bench-tables renders the committed benchmark snapshots
// (BENCH_mem.json, BENCH_pt.json, BENCH_cpg.json, BENCH_fabric.json)
// as the markdown performance tables embedded in README.md, between the
// `<!-- bench-tables:begin -->` / `<!-- bench-tables:end -->` markers.
//
//	go run ./scripts/bench-tables            # rewrite README.md in place
//	go run ./scripts/bench-tables -check     # fail if README.md drifted
//
// CI runs the -check form, so the README's numbers can never silently
// diverge from the committed snapshots: regenerating a BENCH_*.json
// without re-running the generator fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

const (
	beginMarker = "<!-- bench-tables:begin -->"
	endMarker   = "<!-- bench-tables:end -->"
)

// benchRow mirrors the row shape of the BENCH_*.json snapshots
// (cmd/inspector-bench's benchResult).
type benchRow struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	MBPerSec      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	P50Ns         float64 `json:"p50_ns,omitempty"`
	P99Ns         float64 `json:"p99_ns,omitempty"`
	FramesPerSec  float64 `json:"frames_per_s,omitempty"`
	ResidentBytes int64   `json:"resident_bytes,omitempty"`
}

// benchFile mirrors the snapshot document.
type benchFile struct {
	Schema     string     `json:"schema"`
	GoVersion  string     `json:"go"`
	Baseline   []benchRow `json:"baseline"`
	BaselineAt string     `json:"baseline_at"`
	Benchmarks []benchRow `json:"benchmarks"`
}

// experiment names one snapshot and the prose above its table.
type experiment struct {
	title string
	file  string
	note  string
}

var experiments = []experiment{
	{
		title: "Tracked-memory substrate (`BENCH_mem.json`)",
		file:  "BENCH_mem.json",
		note: "Every `Space.Read/Write` and every sync-point `Commit` pays these paths; " +
			"the baseline is the pre-fast-path seed (see DESIGN.md, \"The tracked-memory fast path\").",
	},
	{
		title: "Branch-trace pipeline (`BENCH_pt.json`)",
		file:  "BENCH_pt.json",
		note: "Tracer → Encoder → AUX ring → Decoder per branch; the baseline is the " +
			"pre packed-TNT seed (see DESIGN.md, \"The branch-trace fast path\").",
	},
	{
		title: "CPG core & query engine (`BENCH_cpg.json`)",
		file:  "BENCH_cpg.json",
		note: "Vertex appends, edge derivation, analysis, traversals, and the live " +
			"pipeline's epoch folds; the baseline is the pre-columnar core. Rows without a " +
			"baseline entry (`QueryEngine/*`, `IncrementalAnalyze*/*`, `ReAnalyze/*`, " +
			"`Store/*`) measure machinery that did not exist in the seed — compare " +
			"`IncrementalAnalyze` to `ReAnalyze` at the same epoch cadence, and the " +
			"`IncrementalAnalyzeLarge` delta-overlay rows (`workers1`, `workers8`) to " +
			"`IncrementalAnalyzeLarge/serial`, the retained full-rebuild reference fold, on " +
			"the 2^20-vertex 64-epoch run (see DESIGN.md, \"The live pipeline\"). The " +
			"`Store/*` rows serve a 16- or 256-file fleet of on-disk columnar CPGs under a " +
			"256 KiB resident budget: `cold` pays mmap-backed decode under LRU eviction " +
			"every op, `warm` hits the content-addressed result cache — the p50/p99 and " +
			"resident columns come from these rows (see DESIGN.md, \"The on-disk CPG\").",
	},
	{
		title: "Distributed fabric soak (`BENCH_fabric.json`)",
		file:  "BENCH_fabric.json",
		note: "Each `Fabric/MrecNcli` row runs the full loadtest soak: M streaming " +
			"recorders push epoch-delta frames at one aggregator while N clients query " +
			"and long-poll it, and every iteration must end with zero dropped epochs and " +
			"byte-identical exports before its numbers count. ns/op is one whole soak; " +
			"frames/s is ingest throughput, p50/p99 are client query latencies. No " +
			"baseline: the ingest wire did not exist before this snapshot (see " +
			"DESIGN.md, \"The distributed fabric\").",
	},
}

func main() {
	check := flag.Bool("check", false, "verify README.md matches the snapshots instead of rewriting it")
	readme := flag.String("readme", "README.md", "README file to rewrite between the bench-tables markers")
	flag.Parse()
	if err := run(*check, *readme); err != nil {
		fmt.Fprintln(os.Stderr, "bench-tables:", err)
		os.Exit(1)
	}
}

func run(check bool, readmePath string) error {
	section, err := renderSection()
	if err != nil {
		return err
	}
	current, err := os.ReadFile(readmePath)
	if err != nil {
		return err
	}
	updated, err := splice(string(current), section)
	if err != nil {
		return fmt.Errorf("%s: %w", readmePath, err)
	}
	if check {
		if updated != string(current) {
			return fmt.Errorf("%s bench tables drifted from the committed BENCH_*.json snapshots; run `go run ./scripts/bench-tables`", readmePath)
		}
		fmt.Println("bench-tables: README.md matches the committed snapshots")
		return nil
	}
	if updated == string(current) {
		fmt.Println("bench-tables: README.md already up to date")
		return nil
	}
	if err := os.WriteFile(readmePath, []byte(updated), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench-tables: rewrote %s\n", readmePath)
	return nil
}

// splice replaces the marked region of the README with the rendered
// section.
func splice(readme, section string) (string, error) {
	begin := strings.Index(readme, beginMarker)
	end := strings.Index(readme, endMarker)
	if begin < 0 || end < 0 || end < begin {
		return "", fmt.Errorf("markers %q … %q not found", beginMarker, endMarker)
	}
	return readme[:begin+len(beginMarker)] + "\n" + section + readme[end:], nil
}

// renderSection renders every experiment's table.
func renderSection() (string, error) {
	var b strings.Builder
	b.WriteString("<!-- Generated by `go run ./scripts/bench-tables` from the committed\n")
	b.WriteString("     BENCH_*.json snapshots. Do not edit by hand: CI diffs this region. -->\n")
	for _, exp := range experiments {
		data, err := os.ReadFile(exp.file)
		if err != nil {
			return "", err
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			return "", fmt.Errorf("%s: %w", exp.file, err)
		}
		b.WriteString("\n### " + exp.title + "\n\n")
		b.WriteString(exp.note + "\n\n")
		// Latency-distribution and throughput columns appear only when
		// some row in the snapshot reports them (the Store/* and
		// Fabric/* scenarios).
		hasDist, hasFrames := false, false
		for _, row := range f.Benchmarks {
			if row.P50Ns > 0 || row.ResidentBytes > 0 {
				hasDist = true
			}
			if row.FramesPerSec > 0 {
				hasFrames = true
			}
		}
		frameHead, frameSep := "", ""
		if hasFrames {
			frameHead, frameSep = " frames/s |", "---:|"
		}
		if hasDist {
			b.WriteString("| benchmark | baseline ns/op | current ns/op | speedup | B/op | allocs/op |" + frameHead + " p50 | p99 | resident |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|" + frameSep + "---:|---:|---:|\n")
		} else {
			b.WriteString("| benchmark | baseline ns/op | current ns/op | speedup | B/op | allocs/op |" + frameHead + "\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|" + frameSep + "\n")
		}
		base := map[string]benchRow{}
		for _, row := range f.Baseline {
			base[row.Name] = row
		}
		for _, row := range f.Benchmarks {
			bl, ok := base[row.Name]
			baseNs, speedup := "—", "—"
			if ok && row.NsPerOp > 0 {
				baseNs = formatNs(bl.NsPerOp)
				speedup = fmt.Sprintf("%.1fx", bl.NsPerOp/row.NsPerOp)
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %d | %d |",
				row.Name, baseNs, formatNs(row.NsPerOp), speedup, row.BytesPerOp, row.AllocsPerOp)
			if hasFrames {
				fps := "—"
				if row.FramesPerSec > 0 {
					fps = fmt.Sprintf("%.0f", row.FramesPerSec)
				}
				fmt.Fprintf(&b, " %s |", fps)
			}
			if hasDist {
				p50, p99, res := "—", "—", "—"
				if row.P50Ns > 0 {
					p50, p99 = formatNs(row.P50Ns), formatNs(row.P99Ns)
				}
				if row.ResidentBytes > 0 {
					res = formatBytes(row.ResidentBytes)
				}
				fmt.Fprintf(&b, " %s | %s | %s |", p50, p99, res)
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// formatBytes renders a byte figure with magnitude-appropriate units.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// formatNs renders a nanosecond figure with magnitude-appropriate
// precision, so tables stay readable from 3 ns to 70 ms.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
