#!/usr/bin/env bash
# inspector-serve smoke: record a histogram CPG, serve it, and check
# that every query kind answers remotely with byte-identical output to
# the local engine (the provenance/v1 contract CI holds the daemon to).
#
# Run from the repository root: ./scripts/serve-smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/inspector-run" ./cmd/inspector-run
go build -o "$workdir/inspector-serve" ./cmd/inspector-serve
go build -o "$workdir/cpg-query" ./cmd/cpg-query

cpg="$workdir/histogram.gob"
"$workdir/inspector-run" -app histogram -threads 1 -size small -seed 1 -cpg "$cpg" >/dev/null

# Bind an OS-assigned port (no collisions on shared runners); the
# daemon prints the actual address once it is listening.
"$workdir/inspector-serve" -cpg "$cpg" -addr 127.0.0.1:0 >"$workdir/serve.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/serve.log")
  if [ -n "$addr" ] && "$workdir/cpg-query" -remote "http://$addr" stats >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: daemon never became ready" >&2; cat "$workdir/serve.log" >&2; exit 1; }

# Deterministic query targets from the single-thread run: the slice and
# path target is thread 0's last sub-computation, the lineage probe is
# the first data edge.
subs=$("$workdir/cpg-query" -cpg "$cpg" -format json stats | sed -n 's/.*"sub_computations": \([0-9]*\).*/\1/p')
last="T0.$((subs - 1))"
"$workdir/cpg-query" -cpg "$cpg" edges data >"$workdir/data-edges.out"
data_edge=$(head -n 1 "$workdir/data-edges.out")
reader=$(echo "$data_edge" | awk '{print $3}')
page=$(echo "$data_edge" | sed -n 's/.*pages=\[\([0-9]*\).*/\1/p')

check() {
  echo "serve-smoke: cpg-query $*"
  "$workdir/cpg-query" -cpg "$cpg" "$@" >"$workdir/local.out"
  "$workdir/cpg-query" -remote "http://$addr" "$@" >"$workdir/remote.out"
  diff -u "$workdir/local.out" "$workdir/remote.out" || {
    echo "serve-smoke: remote output diverges for: $*" >&2
    exit 1
  }
}

check stats
check verify
check edges
check edges data
check slice "$last"
check taint T0.0
check path T0.0 "$last"
if [ -n "$page" ] && [ -n "$reader" ]; then
  check lineage "$page" "$reader"
fi
check -format json stats
check -format json slice "$last"

echo "serve-smoke: all query kinds byte-identical local vs remote"

# Live round: serve a workload WHILE it records (-live), query mid-run,
# and assert the analysis epoch advances — the provenance/v1 liveness
# contract. -live-slowdown stretches the recording so the mid-run window
# is comfortably wider than the polling interval.
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
"$workdir/inspector-serve" -workload histogram -threads 4 -size small -seed 1 \
  -live -live-slowdown 25ms -addr 127.0.0.1:0 >"$workdir/live.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/live.log" | head -n 1)
  if [ -n "$addr" ] && "$workdir/cpg-query" -remote "http://$addr" -format json stats >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: live daemon never became ready" >&2; cat "$workdir/live.log" >&2; exit 1; }

live_epoch() {
  "$workdir/cpg-query" -remote "http://$addr" -format json stats |
    sed -n 's/.*"epoch": \([0-9]*\).*/\1/p'
}
live_subs() {
  "$workdir/cpg-query" -remote "http://$addr" -format json stats |
    sed -n 's/.*"sub_computations": \([0-9]*\).*/\1/p'
}

e1=$(live_epoch)
s1=$(live_subs)
[ -n "$e1" ] && [ "$e1" -ge 1 ] || {
  echo "serve-smoke: live response carries no epoch (got '$e1')" >&2; exit 1;
}
advanced=""
for _ in $(seq 1 200); do
  e2=$(live_epoch)
  if [ -n "$e2" ] && [ "$e2" -gt "$e1" ]; then
    advanced=yes
    break
  fi
  sleep 0.05
done
[ -n "$advanced" ] || {
  echo "serve-smoke: live epoch never advanced past $e1 while the workload ran" >&2
  cat "$workdir/live.log" >&2
  exit 1
}
s2=$(live_subs)
[ "$s2" -ge "$s1" ] || {
  echo "serve-smoke: sub-computation count regressed mid-run: $s1 -> $s2" >&2; exit 1;
}
echo "serve-smoke: live epoch advanced $e1 -> $e2 mid-run (subs $s1 -> $s2)"

# The live graph answers every query kind mid-run or post-run alike.
"$workdir/cpg-query" -remote "http://$addr" verify >/dev/null
"$workdir/cpg-query" -remote "http://$addr" slice T0.0 >/dev/null
echo "serve-smoke: live round passed"

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

# Graceful-shutdown round: SIGTERM must drain and exit 0, and the
# health endpoints must report the documented states while serving.
"$workdir/inspector-serve" -cpg "$cpg" -addr 127.0.0.1:0 >"$workdir/drain.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/drain.log" | head -n 1)
  if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: drain daemon never became ready" >&2; cat "$workdir/drain.log" >&2; exit 1; }

curl -fsS "http://$addr/healthz" | grep -q '"ok": true' || {
  echo "serve-smoke: /healthz did not report ok" >&2; exit 1;
}
curl -fsS "http://$addr/readyz" | grep -q '"ready": true' || {
  echo "serve-smoke: /readyz did not report ready" >&2; exit 1;
}

# Start a request, let it reach the server, then SIGTERM: the daemon
# must let it finish, stop accepting, and exit 0 within the drain
# deadline. (True mid-flight drain is pinned deterministically by
# TestServeGracefulDrain; here we only need shutdown-under-traffic.)
"$workdir/cpg-query" -remote "http://$addr" stats >"$workdir/inflight.out" &
query_pid=$!
sleep 0.2
kill -TERM "$serve_pid"
wait "$query_pid" || { echo "serve-smoke: in-flight query failed during drain" >&2; exit 1; }
rc=0
wait "$serve_pid" || rc=$?
serve_pid=""
[ "$rc" -eq 0 ] || {
  echo "serve-smoke: daemon exited $rc after SIGTERM (want 0)" >&2
  cat "$workdir/drain.log" >&2
  exit 1
}
grep -q 'draining' "$workdir/drain.log" || {
  echo "serve-smoke: no drain announcement in the log" >&2
  cat "$workdir/drain.log" >&2
  exit 1
}
echo "serve-smoke: graceful shutdown round passed (SIGTERM drained, exit 0)"

# Journal round: record with a write-ahead journal, SIGKILL a twin run
# mid-recording, recover the orphaned journal, and serve the recovery.
# The recovered prefix must match the uninterrupted run's journal
# replayed to the same epoch byte-for-byte, the recovery must say it is
# degraded, and the served graph must answer queries with the same bytes
# as the local engine over the recovered artifact.
go build -o "$workdir/inspector-recover" ./cmd/inspector-recover

jref="$workdir/jref"
jkill="$workdir/jkill"
"$workdir/inspector-run" -app histogram -threads 1 -size small -seed 1 -journal "$jref" >/dev/null

rc=0
# The trailing exit keeps bash from exec-ing into the child, so the
# subshell survives to absorb the job-control "Killed" notice.
( "$workdir/inspector-run" -app histogram -threads 1 -size small -seed 1 -journal "$jkill" \
  -faults "crash:after=1,count=1"; exit $? ) >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || { echo "serve-smoke: crash fault did not kill the run" >&2; exit 1; }

summary=$("$workdir/inspector-recover" -journal "$jkill" -summary-json)
echo "$summary" | grep -q '"sealed":false' || {
  echo "serve-smoke: killed journal claims a clean seal: $summary" >&2; exit 1;
}
echo "$summary" | grep -q '"degraded":true' || {
  echo "serve-smoke: killed journal not marked degraded: $summary" >&2; exit 1;
}
epoch=$(echo "$summary" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
[ -n "$epoch" ] && [ "$epoch" -ge 1 ] || {
  echo "serve-smoke: no durable epoch recovered: $summary" >&2; exit 1;
}

"$workdir/inspector-recover" -journal "$jkill" -q \
  -analysis "$workdir/killed-analysis.json" -cpg "$workdir/recovered.gob"
"$workdir/inspector-recover" -journal "$jref" -q -epoch "$epoch" \
  -analysis "$workdir/ref-analysis.json"
diff -u "$workdir/ref-analysis.json" "$workdir/killed-analysis.json" || {
  echo "serve-smoke: killed-run recovery diverges from the clean run at epoch $epoch" >&2
  exit 1
}

"$workdir/inspector-serve" -journal "$jkill" -addr 127.0.0.1:0 >"$workdir/journal.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/journal.log" | head -n 1)
  if [ -n "$addr" ] && "$workdir/cpg-query" -remote "http://$addr" stats >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: journal daemon never became ready" >&2; cat "$workdir/journal.log" >&2; exit 1; }
grep -q 'torn tail\|unsealed' "$workdir/journal.log" || {
  echo "serve-smoke: daemon log never announced the degraded recovery" >&2
  cat "$workdir/journal.log" >&2
  exit 1
}

# Remote answers over the recovered journal match the local engine over
# the recovered artifact. (stats embeds the analysis epoch, which the
# post-mortem gob load resets — compare the structural query kinds.)
jcheck() {
  echo "serve-smoke: journal cpg-query $*"
  "$workdir/cpg-query" -cpg "$workdir/recovered.gob" "$@" >"$workdir/local.out"
  "$workdir/cpg-query" -remote "http://$addr" "$@" >"$workdir/remote.out"
  diff -u "$workdir/local.out" "$workdir/remote.out" || {
    echo "serve-smoke: journal remote output diverges for: $*" >&2
    exit 1
  }
}
jcheck edges
jcheck edges data
jcheck slice T0.0
jcheck taint T0.0
jcheck verify
echo "serve-smoke: journal round passed (killed at epoch $epoch, recovered, served, byte-identical)"

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

# CPG-file round: convert artifacts to the columnar on-disk format, serve
# the directory lazily under a deliberately tiny resident budget, and hold
# the bounded-memory store to the same byte-identical contract as the
# eager gob engine — then repeat a query and assert the content-addressed
# result cache answered it.
cpgdir="$workdir/cpgdir"
mkdir -p "$cpgdir"
"$workdir/cpg-query" -cpg "$cpg" export "$cpgdir/histogram.cpg" >/dev/null
"$workdir/inspector-run" -app word_count -threads 1 -size small -seed 2 \
  -cpgfile "$cpgdir/word_count.cpg" >/dev/null

"$workdir/inspector-serve" -cpgdir "$cpgdir" -resident-budget 4096 \
  -addr 127.0.0.1:0 >"$workdir/cpgdir.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/cpgdir.log" | head -n 1)
  if [ -n "$addr" ] && "$workdir/cpg-query" -remote "http://$addr" -id histogram stats >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: cpgdir daemon never became ready" >&2; cat "$workdir/cpgdir.log" >&2; exit 1; }

dcheck() {
  echo "serve-smoke: cpgdir cpg-query $*"
  "$workdir/cpg-query" -cpg "$cpg" "$@" >"$workdir/local.out"
  "$workdir/cpg-query" -remote "http://$addr" -id histogram "$@" >"$workdir/remote.out"
  diff -u "$workdir/local.out" "$workdir/remote.out" || {
    echo "serve-smoke: cpgdir remote output diverges for: $*" >&2
    exit 1
  }
}
dcheck stats
dcheck verify
dcheck edges
dcheck edges data
dcheck slice "$last"
dcheck taint T0.0
dcheck -format json stats

# The repeat of every dcheck query above must have hit the result cache;
# GET /v1/store exposes the counters.
dcheck stats
hits=$(curl -fsS "http://$addr/v1/store" | sed -n 's/.*"hits": \([0-9]*\).*/\1/p')
[ -n "$hits" ] && [ "$hits" -ge 1 ] || {
  echo "serve-smoke: repeated query never hit the result cache (hits='$hits')" >&2
  curl -fsS "http://$addr/v1/store" >&2 || true
  exit 1
}
cpgs=$(curl -fsS "http://$addr/v1/store" | sed -n 's/.*"cpgs": \([0-9]*\).*/\1/p')
[ "$cpgs" = "2" ] || {
  echo "serve-smoke: /v1/store reports $cpgs cpgs, want 2" >&2; exit 1;
}
echo "serve-smoke: cpgdir round passed (lazy store byte-identical, $hits cache hits)"

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

# Ingest round: the distributed fabric. An aggregator accepts streamed
# epoch-delta frames; a clean streaming run must leave it holding the
# byte-identical analysis of the same recording's journal, and a
# SIGKILLed streaming run resumed via inspector-recover -stream must
# converge on the reference bytes at the killed run's durable epoch.
"$workdir/inspector-serve" -ingest -addr 127.0.0.1:0 >"$workdir/ingest.log" 2>&1 &
serve_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.* on \(127\.0\.0\.1:[0-9]*\)$/\1/p' "$workdir/ingest.log" | head -n 1)
  if [ -n "$addr" ] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then
    break
  fi
  addr=""
  sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: ingest daemon never became ready" >&2; cat "$workdir/ingest.log" >&2; exit 1; }

# Clean streaming run under a distinct source name; the reference is the
# uninterrupted journal (jref) replayed in full — same run, same
# epoch-per-seal cadence, so the analyses must match byte for byte.
"$workdir/inspector-run" -app histogram -threads 1 -size small -seed 1 \
  -stream "http://$addr" -stream-id clean >"$workdir/stream-clean.out"
grep -q 'epochs shipped' "$workdir/stream-clean.out" || {
  echo "serve-smoke: clean streaming run never shipped" >&2
  cat "$workdir/stream-clean.out" >&2
  exit 1
}
"$workdir/inspector-recover" -journal "$jref" -q -analysis "$workdir/ref-full.json"
curl -fsS "http://$addr/v1/cpgs/clean/export" >"$workdir/agg-clean.json"
diff -u "$workdir/ref-full.json" "$workdir/agg-clean.json" || {
  echo "serve-smoke: clean stream's aggregator export diverges from the journal replay" >&2
  exit 1
}

# SIGKILL a streaming recorder mid-run (crash fires at a commit
# boundary, after the stream hook queued that very epoch), then re-feed
# the journal: dedup absorbs whatever prefix made it onto the wire
# before the kill, and the aggregator lands exactly on the journal's
# durable epoch.
jskill="$workdir/jskill"
rc=0
( "$workdir/inspector-run" -app histogram -threads 1 -size small -seed 1 \
  -journal "$jskill" -stream "http://$addr" \
  -faults "crash:after=1,count=1"; exit $? ) >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || { echo "serve-smoke: crash fault did not kill the streaming run" >&2; exit 1; }

skill_summary=$("$workdir/inspector-recover" -journal "$jskill" -summary-json)
skill_epoch=$(echo "$skill_summary" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')
skill_source=$(echo "$skill_summary" | sed -n 's/.*"run_id":"\([^"]*\)".*/\1/p')
[ -n "$skill_epoch" ] && [ "$skill_epoch" -ge 1 ] || {
  echo "serve-smoke: killed streaming journal has no durable epoch: $skill_summary" >&2; exit 1;
}
[ "$skill_source" = "histogram-t1-s1" ] || {
  echo "serve-smoke: streaming run id not deterministic: $skill_summary" >&2; exit 1;
}

"$workdir/inspector-recover" -journal "$jskill" -stream "http://$addr" >"$workdir/restream.out"
grep -q 'aggregator at epoch' "$workdir/restream.out" || {
  echo "serve-smoke: recover -stream never reported the aggregator offset" >&2
  cat "$workdir/restream.out" >&2
  exit 1
}
"$workdir/inspector-recover" -journal "$jref" -q -epoch "$skill_epoch" \
  -analysis "$workdir/ref-at-kill.json"
curl -fsS "http://$addr/v1/cpgs/$skill_source/export" >"$workdir/agg-resumed.json"
diff -u "$workdir/ref-at-kill.json" "$workdir/agg-resumed.json" || {
  echo "serve-smoke: resumed stream diverges from the clean journal at epoch $skill_epoch" >&2
  exit 1
}
echo "serve-smoke: ingest round passed (clean stream byte-identical; SIGKILL at epoch $skill_epoch resumed byte-identical)"

kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
