module github.com/repro/inspector

go 1.24
