// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus ablations of the design decisions DESIGN.md calls out.
//
// The figures report *virtual-time overhead factors* via b.ReportMetric;
// wall-clock ns/op measures the simulator itself, not the paper's claim.
// Run with:
//
//	go test -bench=. -benchmem
package inspector_test

import (
	"fmt"
	"testing"

	"github.com/repro/inspector/internal/harness"
	"github.com/repro/inspector/internal/lz4"
	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/vtime"
	"github.com/repro/inspector/internal/workloads"
)

// benchApps is the subset exercised per-app in figure benchmarks; the
// full 12-app sweep lives in cmd/inspector-bench (it is minutes of work,
// too slow for go test -bench defaults).
var benchApps = []string{"blackscholes", "canneal", "histogram", "linear_regression", "reverse_index"}

// runCfg runs one workload/mode/threads configuration and returns the
// report.
func runCfg(b *testing.B, app string, mode threading.Mode, threads int, size workloads.Size) *threading.Report {
	b.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.Config{Size: size, Threads: threads, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName: app, Mode: mode, MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		b.Fatal(err)
	}
	return rt.LastReport()
}

// BenchmarkFig5 regenerates Figure 5: provenance overhead w.r.t. native
// execution for threads in {2, 4, 8, 16}.
func BenchmarkFig5(b *testing.B) {
	for _, app := range benchApps {
		for _, th := range []int{2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/threads=%d", app, th), func(b *testing.B) {
				var overhead float64
				for i := 0; i < b.N; i++ {
					nat := runCfg(b, app, threading.ModeNative, th, workloads.Small)
					insp := runCfg(b, app, threading.ModeInspector, th, workloads.Small)
					overhead = float64(insp.Time) / float64(nat.Time)
				}
				b.ReportMetric(overhead, "overhead-x")
			})
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: the overhead breakdown between the
// threading library and the OS support for PT at 16 threads.
func BenchmarkFig6(b *testing.B) {
	for _, app := range benchApps {
		b.Run(app, func(b *testing.B) {
			var tl, pt float64
			for i := 0; i < b.N; i++ {
				insp := runCfg(b, app, threading.ModeInspector, 16, workloads.Small)
				tl = float64(insp.ThreadingCycles)
				pt = float64(insp.PTCycles)
			}
			b.ReportMetric(tl/1e6, "threading-Mcy")
			b.ReportMetric(pt/1e6, "pt-Mcy")
		})
	}
}

// BenchmarkTable7 regenerates Table 7 (the paper's Figure 7): page fault
// counts and rates at 16 threads.
func BenchmarkTable7(b *testing.B) {
	for _, app := range benchApps {
		b.Run(app, func(b *testing.B) {
			var faults, rate float64
			for i := 0; i < b.N; i++ {
				insp := runCfg(b, app, threading.ModeInspector, 16, workloads.Small)
				faults = float64(insp.Faults())
				rate = insp.FaultsPerSec()
			}
			b.ReportMetric(faults, "faults")
			b.ReportMetric(rate, "faults/vsec")
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: overhead versus input size for the
// four applications the paper sweeps.
func BenchmarkFig8(b *testing.B) {
	for _, app := range harness.Fig8Apps {
		for _, size := range []workloads.Size{workloads.Small, workloads.Medium, workloads.Large} {
			b.Run(fmt.Sprintf("%s/size=%v", app, size), func(b *testing.B) {
				var overhead float64
				for i := 0; i < b.N; i++ {
					nat := runCfg(b, app, threading.ModeNative, 8, size)
					insp := runCfg(b, app, threading.ModeInspector, 8, size)
					overhead = float64(insp.Time) / float64(nat.Time)
				}
				b.ReportMetric(overhead, "overhead-x")
			})
		}
	}
}

// BenchmarkTable9 regenerates Table 9 (the paper's Figure 9): provenance
// log size, lz4 compressibility, bandwidth, and branch rate.
func BenchmarkTable9(b *testing.B) {
	for _, app := range benchApps {
		b.Run(app, func(b *testing.B) {
			var sizeMB, ratio, bw, br float64
			for i := 0; i < b.N; i++ {
				w, err := workloads.Get(app)
				if err != nil {
					b.Fatal(err)
				}
				cfg := workloads.Config{Size: workloads.Small, Threads: 8, Seed: 1}
				rt, err := threading.NewRuntime(threading.Options{
					AppName: app, Mode: threading.ModeInspector, MaxThreads: w.MaxThreads(cfg),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Run(rt, cfg); err != nil {
					b.Fatal(err)
				}
				rep := rt.LastReport()
				var raw, comp int
				for _, pid := range rt.Session().PIDs() {
					if st, ok := rt.Session().Stream(pid); ok {
						trace := st.Trace()
						raw += len(trace)
						comp += len(lz4.Compress(nil, trace))
					}
				}
				sizeMB = float64(raw) / 1e6
				if comp > 0 {
					ratio = float64(raw) / float64(comp)
				}
				bw = rep.TraceBandwidthMBps()
				br = rep.BranchesPerSec()
			}
			b.ReportMetric(sizeMB, "logMB")
			b.ReportMetric(ratio, "lz4-ratio")
			b.ReportMetric(bw, "MB/vsec")
			b.ReportMetric(br, "branches/vsec")
		})
	}
}

// BenchmarkAblationGranularity ablates design decision 1: read/write-set
// tracking granularity. Smaller pages mean more faults but finer
// provenance; 4 KiB is the paper's choice.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, pageSize := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("page=%d", pageSize), func(b *testing.B) {
			var faults, time float64
			for i := 0; i < b.N; i++ {
				w, err := workloads.Get("histogram")
				if err != nil {
					b.Fatal(err)
				}
				cfg := workloads.Config{Size: workloads.Small, Threads: 4, Seed: 1}
				rt, err := threading.NewRuntime(threading.Options{
					AppName: "histogram", Mode: threading.ModeInspector,
					MaxThreads: w.MaxThreads(cfg), PageSize: pageSize,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Run(rt, cfg); err != nil {
					b.Fatal(err)
				}
				rep := rt.LastReport()
				faults = float64(rep.Faults())
				time = float64(rep.Time) / 1e6
			}
			b.ReportMetric(faults, "faults")
			b.ReportMetric(time, "vtime-Mcy")
		})
	}
}

// BenchmarkAblationCommit ablates design decision 2: diff-based commit
// versus whole-page copy, measured as bytes actually published.
func BenchmarkAblationCommit(b *testing.B) {
	// A fresh backing per iteration keeps the diff non-empty: rewriting
	// identical values into a warm backing would diff to nothing.
	freshBacking := func() *mem.Backing {
		backing, err := mem.NewBacking("heap", 0x10000, 1<<22, 4096)
		if err != nil {
			b.Fatal(err)
		}
		return backing
	}
	b.Run("diff-commit", func(b *testing.B) {
		var published float64
		for i := 0; i < b.N; i++ {
			backing := freshBacking()
			s := mem.NewSpace(1, []*mem.Backing{backing}, nil, true)
			// Sparse writes: 8 bytes in each of 64 pages.
			for p := 0; p < 64; p++ {
				if _, err := s.StoreU64(mem.Addr(0x10000+p*4096), uint64(p)+1); err != nil {
					b.Fatal(err)
				}
			}
			res := s.Commit()
			published = float64(res.CommittedBytes)
		}
		b.ReportMetric(published, "bytes-published")
	})
	b.Run("whole-page-copy", func(b *testing.B) {
		// The alternative design publishes every dirty page in full.
		var published float64
		for i := 0; i < b.N; i++ {
			backing := freshBacking()
			s := mem.NewSpace(2, []*mem.Backing{backing}, nil, true)
			for p := 0; p < 64; p++ {
				if _, err := s.StoreU64(mem.Addr(0x10000+p*4096), uint64(p)+1); err != nil {
					b.Fatal(err)
				}
			}
			res := s.Commit()
			published = float64(res.DirtyPages * 4096)
		}
		b.ReportMetric(published, "bytes-published")
	})
}

// BenchmarkAblationOrdering ablates design decision 3: decentralized
// vector clocks versus a single global serializing recorder, measured as
// virtual time of a lock-heavy run when every sync op costs a global
// round trip instead of a vclock merge.
func BenchmarkAblationOrdering(b *testing.B) {
	run := func(model vtime.CostModel) float64 {
		w, err := workloads.Get("canneal")
		if err != nil {
			b.Fatal(err)
		}
		cfg := workloads.Config{Size: workloads.Small, Threads: 8, Seed: 1}
		rt, err := threading.NewRuntime(threading.Options{
			AppName: "canneal", Mode: threading.ModeInspector,
			MaxThreads: w.MaxThreads(cfg), Model: model,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Run(rt, cfg); err != nil {
			b.Fatal(err)
		}
		return float64(rt.LastReport().Time) / 1e6
	}
	b.Run("vector-clocks", func(b *testing.B) {
		var t float64
		for i := 0; i < b.N; i++ {
			t = run(vtime.Default())
		}
		b.ReportMetric(t, "vtime-Mcy")
	})
	b.Run("global-serialization", func(b *testing.B) {
		// A total-order recorder serializes every sync event through one
		// channel: model it as a much costlier sync operation (a global
		// lock round trip under contention) with no per-slot clock cost.
		m := vtime.Default()
		m.SyncOp = 8000
		m.VectorClockPerSlot = 0
		var t float64
		for i := 0; i < b.N; i++ {
			t = run(m)
		}
		b.ReportMetric(t, "vtime-Mcy")
	})
}

// BenchmarkAblationPTEncoding ablates design decision 4: TNT bit-packing
// and last-IP compression versus naive fixed-width event records,
// measured as trace bytes per branch.
func BenchmarkAblationPTEncoding(b *testing.B) {
	w, err := workloads.Get("string_match")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: 4, Seed: 1}
	b.Run("pt-packets", func(b *testing.B) {
		var bytesPerBranch float64
		for i := 0; i < b.N; i++ {
			rt, err := threading.NewRuntime(threading.Options{
				AppName: "string_match", Mode: threading.ModeInspector, MaxThreads: w.MaxThreads(cfg),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Run(rt, cfg); err != nil {
				b.Fatal(err)
			}
			rep := rt.LastReport()
			bytesPerBranch = float64(rep.TraceBytes) / float64(rep.Branches)
		}
		b.ReportMetric(bytesPerBranch, "bytes/branch")
	})
	b.Run("naive-records", func(b *testing.B) {
		// The strawman encodes every branch as a fixed 9-byte record
		// (8-byte IP + 1-byte outcome), with no TNT packing or IP
		// compression.
		var bytesPerBranch float64
		for i := 0; i < b.N; i++ {
			bytesPerBranch = 9.0
		}
		b.ReportMetric(bytesPerBranch, "bytes/branch")
	})
}

// BenchmarkSnapshot measures design decision 5: the bounded snapshot ring
// versus retaining the full trace.
func BenchmarkSnapshot(b *testing.B) {
	w, err := workloads.Get("canneal")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: 4, Seed: 1}
	for _, snapshotMode := range []bool{false, true} {
		name := "full-trace"
		if snapshotMode {
			name = "snapshot-ring"
		}
		b.Run(name, func(b *testing.B) {
			var retainedMB float64
			for i := 0; i < b.N; i++ {
				opts := threading.Options{
					AppName: "canneal", Mode: threading.ModeInspector,
					MaxThreads: w.MaxThreads(cfg), AuxSize: 64 << 10,
				}
				if snapshotMode {
					opts.TraceMode = perf.ModeSnapshot
				}
				rt, err := threading.NewRuntime(opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Run(rt, cfg); err != nil {
					b.Fatal(err)
				}
				retainedMB = float64(rt.Session().TotalTraceBytes()) / 1e6
			}
			b.ReportMetric(retainedMB, "retained-MB")
		})
	}
}
