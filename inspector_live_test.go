package inspector_test

import (
	"context"
	"errors"
	"testing"
	"time"

	inspector "github.com/repro/inspector"
)

// TestLiveQueryDuringRun is the acceptance check for the live pipeline's
// library surface: a Query issued while Run is still executing answers
// from a completed epoch, carries the epoch id, and covers the
// sub-computations sealed so far; after Run returns the final epoch
// matches the batch analysis of the complete graph.
func TestLiveQueryDuringRun(t *testing.T) {
	rt, err := inspector.New(inspector.Options{AppName: "live-test", Live: true})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("state")
	firstPhase := make(chan struct{})
	release := make(chan struct{})
	runDone := make(chan error, 1)

	go func() {
		_, err := rt.Run(func(main *inspector.Thread) {
			addr := main.Malloc(64)
			for i := 0; i < 8; i++ {
				m.Lock(main)
				main.Store64(addr, uint64(i))
				m.Unlock(main)
			}
			close(firstPhase)
			<-release
			for i := 0; i < 8; i++ {
				m.Lock(main)
				_ = main.Load64(addr)
				m.Unlock(main)
			}
		})
		runDone <- err
	}()

	<-firstPhase
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// The first phase sealed 16 sub-computations (two boundaries per
	// lock/unlock pair); wait until an epoch has folded some of them.
	if _, err := rt.WaitEpoch(ctx, 2); err != nil {
		t.Fatalf("WaitEpoch: %v", err)
	}
	res, err := rt.Query(ctx, inspector.Query{Kind: inspector.QueryStats})
	if err != nil {
		t.Fatalf("live query: %v", err)
	}
	if res.Epoch == 0 {
		t.Fatal("live query result carries no epoch")
	}
	if res.Stats.SubComputations == 0 {
		t.Fatal("live query saw no sealed sub-computations mid-run")
	}
	midSubs := res.Stats.SubComputations
	midEpoch := res.Epoch

	close(release)
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Post-run: the final epoch covers the complete graph.
	res, err = rt.Query(ctx, inspector.Query{Kind: inspector.QueryStats})
	if err != nil {
		t.Fatalf("post-run query: %v", err)
	}
	if res.Epoch <= midEpoch {
		t.Fatalf("epoch did not advance after run: %d -> %d", midEpoch, res.Epoch)
	}
	if res.Stats.SubComputations <= midSubs {
		t.Fatalf("final subs %d, mid-run subs %d — second phase missing",
			res.Stats.SubComputations, midSubs)
	}
	if want := rt.CPG().NumSubs(); res.Stats.SubComputations != want {
		t.Fatalf("final epoch sees %d subs, graph holds %d", res.Stats.SubComputations, want)
	}
	if err := rt.CPG().Analyze().Verify(); err != nil {
		t.Fatalf("final graph invalid: %v", err)
	}
}

// TestLiveOptionValidation pins the Options contract around Live.
func TestLiveOptionValidation(t *testing.T) {
	if _, err := inspector.New(inspector.Options{Live: true, Native: true}); !errors.Is(err, inspector.ErrBadOptions) {
		t.Fatalf("Live+Native accepted: %v", err)
	}
	rt, err := inspector.New(inspector.Options{AppName: "not-live"})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Epoch(); got != 0 {
		t.Fatalf("Epoch without Live = %d", got)
	}
	if _, err := rt.WaitEpoch(context.Background(), 1); !errors.Is(err, inspector.ErrNotLive) {
		t.Fatalf("WaitEpoch without Live = %v, want ErrNotLive", err)
	}
}
