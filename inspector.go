// Package inspector is a data-provenance library for shared-memory
// multithreaded programs, reproducing the system described in
//
//	Thalheim, Bhatotia, Fetzer.
//	"INSPECTOR: Data Provenance using Intel Processor Trace (PT)".
//	ICDCS 2016.
//
// INSPECTOR records the lineage of a multithreaded execution as a
// Concurrent Provenance Graph (CPG): a DAG of sub-computations (the
// instruction runs between synchronization calls) connected by control,
// synchronization, and data-dependence edges. The original system is a
// drop-in pthreads replacement that tracks data flow with MMU page
// protections over forked processes and control flow with Intel PT; this
// reproduction runs workloads on a faithful software substrate (see
// DESIGN.md for the substitution table) and exposes the same concepts:
//
//	rt, err := inspector.New(inspector.Options{AppName: "demo"})
//	if err != nil { ... }
//	m := rt.NewMutex("state")
//	report, err := rt.Run(func(main *inspector.Thread) {
//	    addr := main.Malloc(64)
//	    child := main.Spawn(func(w *inspector.Thread) {
//	        m.Lock(w)
//	        w.Store64(addr, 42)
//	        m.Unlock(w)
//	    })
//	    main.Join(child)
//	    m.Lock(main)
//	    _ = main.Load64(addr)
//	    m.Unlock(main)
//	})
//	cpg := rt.CPG()            // query the provenance graph
//	_ = cpg.Analyze().Verify() // it is a valid happens-before DAG
//
// Threads spawned through the library are isolated like processes
// (release consistency: writes propagate at synchronization points), all
// branches announced through Thread.Branch are traced into per-thread
// Intel-PT-style packet streams, and the runtime's virtual-time cost
// model reports the time/work metrics the paper's evaluation uses.
package inspector

import (
	"io"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/snapshot"
	"github.com/repro/inspector/internal/threading"
)

// Re-exported fundamental types. Aliases keep one implementation while
// giving users a single import.
type (
	// Thread is one application thread (a forked process under
	// INSPECTOR). All memory, branch, and sync operations hang off it.
	Thread = threading.Thread
	// Mutex is the pthread_mutex replacement.
	Mutex = threading.Mutex
	// Barrier is the pthread_barrier replacement.
	Barrier = threading.Barrier
	// Semaphore is the sem_t replacement.
	Semaphore = threading.Semaphore
	// Cond is the pthread_cond replacement.
	Cond = threading.Cond
	// Report carries the run's statistics (time, work, faults, trace
	// sizes, overhead breakdown).
	Report = threading.Report
	// Addr is a simulated virtual address in the tracked address space.
	Addr = mem.Addr
	// CPG is the Concurrent Provenance Graph.
	CPG = core.Graph
	// SubID identifies one sub-computation vertex.
	SubID = core.SubID
	// Edge is one CPG edge (control, sync, or data).
	Edge = core.Edge
	// Analysis is a queryable view over a completed CPG.
	Analysis = core.Analysis
	// Snapshot is one consistent-cut capture.
	Snapshot = snapshot.Snapshot
)

// Edge kinds, re-exported for query filters.
const (
	EdgeControl = core.EdgeControl
	EdgeSync    = core.EdgeSync
	EdgeData    = core.EdgeData
)

// Options configure a runtime.
type Options struct {
	// AppName names the application in reports and perf records.
	AppName string
	// Native disables all provenance machinery, running the workload as
	// a plain pthreads program — the evaluation baseline.
	Native bool
	// MaxThreads bounds concurrent thread slots (default 64). Vector
	// clocks are this wide, so workloads that spawn hundreds of threads
	// pay proportionally (kmeans in Figure 5).
	MaxThreads int
	// PageSize is the data-provenance tracking granularity (default
	// 4096, the paper's choice; the ablation benchmarks vary it).
	PageSize int
	// SnapshotMode bounds trace space with an overwriting AUX ring and
	// enables the live snapshot facility (§VI). Without it the full
	// trace is retained.
	SnapshotMode bool
	// SnapshotEverySyncs takes an automatic consistent cut each N
	// synchronization boundaries when SnapshotMode is set (default 64).
	SnapshotEverySyncs uint64
	// SnapshotSlots is the snapshot ring capacity (default 4).
	SnapshotSlots int
}

// Runtime is one provenance-recording execution context.
type Runtime struct {
	rt    *threading.Runtime
	snaps *snapshot.Snapshotter
}

// New creates a runtime.
func New(opts Options) (*Runtime, error) {
	mode := threading.ModeInspector
	if opts.Native {
		mode = threading.ModeNative
	}
	traceMode := perf.ModeFullTrace
	if opts.SnapshotMode {
		traceMode = perf.ModeSnapshot
	}
	inner, err := threading.NewRuntime(threading.Options{
		AppName:    opts.AppName,
		Mode:       mode,
		MaxThreads: opts.MaxThreads,
		PageSize:   opts.PageSize,
		TraceMode:  traceMode,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{rt: inner}
	if opts.SnapshotMode && !opts.Native {
		every := opts.SnapshotEverySyncs
		if every == 0 {
			every = 64
		}
		s, err := snapshot.New(inner, snapshot.Options{
			Slots:      opts.SnapshotSlots,
			EverySyncs: every,
		})
		if err != nil {
			return nil, err
		}
		rt.snaps = s
		inner.RegisterSnapshotHook(s.Hook())
	}
	return rt, nil
}

// Run executes main as the program's first thread and returns the run
// report. Run may be called once per Runtime.
func (r *Runtime) Run(main func(*Thread)) (*Report, error) {
	return r.rt.Run(main)
}

// MapInput maps input data into the tracked address space (the mmap'd
// input file of the paper's input shim) and returns its base address.
func (r *Runtime) MapInput(name string, data []byte) (Addr, error) {
	return r.rt.MapInput(name, data)
}

// NewMutex creates a named mutex.
func (r *Runtime) NewMutex(name string) *Mutex { return r.rt.NewMutex(name) }

// NewBarrier creates a named barrier for n participants.
func (r *Runtime) NewBarrier(name string, n int) *Barrier { return r.rt.NewBarrier(name, n) }

// NewSemaphore creates a named counting semaphore.
func (r *Runtime) NewSemaphore(name string, initial int) *Semaphore {
	return r.rt.NewSemaphore(name, initial)
}

// NewCond creates a condition variable tied to m.
func (r *Runtime) NewCond(name string, m *Mutex) *Cond { return r.rt.NewCond(name, m) }

// GlobalsBase returns the base address of the shared globals region.
func (r *Runtime) GlobalsBase() Addr { return r.rt.GlobalsBase() }

// CPG returns the recorded Concurrent Provenance Graph.
func (r *Runtime) CPG() *CPG { return r.rt.Graph() }

// WriteDOT renders the CPG in Graphviz form.
func (r *Runtime) WriteDOT(w io.Writer) error { return r.rt.Graph().WriteDOT(w) }

// WriteCPG serializes the CPG (gob) for offline analysis with cpg-query.
func (r *Runtime) WriteCPG(w io.Writer) error { return r.rt.Graph().EncodeGob(w) }

// DecodeTraces decodes every thread's PT trace against the program image,
// returning per-PID reconstructed branch-event counts. It fails if any
// trace does not reconstruct — the end-to-end check that the compressed
// packet streams carry the full control flow.
func (r *Runtime) DecodeTraces() (map[int32]int, error) { return r.rt.DecodeTraces() }

// Snapshots returns the retained consistent-cut snapshots, oldest first
// (empty unless SnapshotMode was set).
func (r *Runtime) Snapshots() []*Snapshot {
	if r.snaps == nil {
		return nil
	}
	return r.snaps.Snapshots()
}

// TakeSnapshot forces an immediate consistent cut (the SIGUSR2 trigger of
// the paper's perf integration). Returns nil unless SnapshotMode is set.
func (r *Runtime) TakeSnapshot() *Snapshot {
	if r.snaps == nil {
		return nil
	}
	return r.snaps.TakeSnapshot()
}

// Unwrap exposes the underlying threading runtime for advanced use
// (harnesses, benchmarks).
func (r *Runtime) Unwrap() *threading.Runtime { return r.rt }
