// Package inspector is a data-provenance library for shared-memory
// multithreaded programs, reproducing the system described in
//
//	Thalheim, Bhatotia, Fetzer.
//	"INSPECTOR: Data Provenance using Intel Processor Trace (PT)".
//	ICDCS 2016.
//
// INSPECTOR records the lineage of a multithreaded execution as a
// Concurrent Provenance Graph (CPG): a DAG of sub-computations (the
// instruction runs between synchronization calls) connected by control,
// synchronization, and data-dependence edges. The original system is a
// drop-in pthreads replacement that tracks data flow with MMU page
// protections over forked processes and control flow with Intel PT; this
// reproduction runs workloads on a faithful software substrate (see
// DESIGN.md for the substitution table) and exposes the same concepts:
//
//	rt, err := inspector.New(inspector.Options{AppName: "demo"})
//	if err != nil { ... }
//	m := rt.NewMutex("state")
//	report, err := rt.Run(func(main *inspector.Thread) {
//	    addr := main.Malloc(64)
//	    child := main.Spawn(func(w *inspector.Thread) {
//	        m.Lock(w)
//	        w.Store64(addr, 42)
//	        m.Unlock(w)
//	    })
//	    main.Join(child)
//	    m.Lock(main)
//	    _ = main.Load64(addr)
//	    m.Unlock(main)
//	})
//	cpg := rt.CPG()            // query the provenance graph
//	_ = cpg.Analyze().Verify() // it is a valid happens-before DAG
//
// After a run, provenance questions go through the versioned query API
// (the provenance package; also served remotely by inspector-serve):
//
//	res, err := rt.Query(ctx, inspector.Query{
//	    Kind:   inspector.QuerySlice, // everything that affected addr
//	    Target: "T0.1",
//	})
//	if err != nil { ... }
//	for _, id := range res.IDs { fmt.Println(id) }
//
// Threads spawned through the library are isolated like processes
// (release consistency: writes propagate at synchronization points), all
// branches announced through Thread.Branch are traced into per-thread
// Intel-PT-style packet streams, and the runtime's virtual-time cost
// model reports the time/work metrics the paper's evaluation uses.
package inspector

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/internal/mem"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/snapshot"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/provenance"
)

// Re-exported fundamental types. Aliases keep one implementation while
// giving users a single import.
type (
	// Thread is one application thread (a forked process under
	// INSPECTOR). All memory, branch, and sync operations hang off it.
	Thread = threading.Thread
	// Mutex is the pthread_mutex replacement.
	Mutex = threading.Mutex
	// Barrier is the pthread_barrier replacement.
	Barrier = threading.Barrier
	// Semaphore is the sem_t replacement.
	Semaphore = threading.Semaphore
	// Cond is the pthread_cond replacement.
	Cond = threading.Cond
	// Report carries the run's statistics (time, work, faults, trace
	// sizes, overhead breakdown).
	Report = threading.Report
	// Addr is a simulated virtual address in the tracked address space.
	Addr = mem.Addr
	// CPG is the Concurrent Provenance Graph.
	CPG = core.Graph
	// SubID identifies one sub-computation vertex.
	SubID = core.SubID
	// Edge is one CPG edge (control, sync, or data).
	Edge = core.Edge
	// Analysis is a queryable view over a completed CPG.
	Analysis = core.Analysis
	// Snapshot is one consistent-cut capture.
	Snapshot = snapshot.Snapshot
	// Query is one typed provenance question (the provenance package's
	// versioned query surface, usable in process via Runtime.Query,
	// from the cpg-query CLI, or against an inspector-serve daemon).
	Query = provenance.Query
	// QueryResult is a Query's answer in provenance/v1 wire form.
	QueryResult = provenance.Result
)

// Edge kinds, re-exported for query filters.
const (
	EdgeControl = core.EdgeControl
	EdgeSync    = core.EdgeSync
	EdgeData    = core.EdgeData
)

// Query kinds, re-exported from the provenance package.
const (
	QueryEdges   = provenance.KindEdges
	QuerySlice   = provenance.KindSlice
	QueryTaint   = provenance.KindTaint
	QueryLineage = provenance.KindLineage
	QueryPath    = provenance.KindPath
	QueryStats   = provenance.KindStats
	QueryVerify  = provenance.KindVerify
)

// Options configure a runtime.
type Options struct {
	// AppName names the application in reports and perf records.
	AppName string
	// Native disables all provenance machinery, running the workload as
	// a plain pthreads program — the evaluation baseline.
	Native bool
	// MaxThreads bounds concurrent thread slots (default 64). Vector
	// clocks are this wide, so workloads that spawn hundreds of threads
	// pay proportionally (kmeans in Figure 5).
	MaxThreads int
	// PageSize is the data-provenance tracking granularity (default
	// 4096, the paper's choice; the ablation benchmarks vary it).
	PageSize int
	// SnapshotMode bounds trace space with an overwriting AUX ring and
	// enables the live snapshot facility (§VI). Without it the full
	// trace is retained.
	SnapshotMode bool
	// SnapshotEverySyncs takes an automatic consistent cut each N
	// synchronization boundaries when SnapshotMode is set (default 64).
	SnapshotEverySyncs uint64
	// SnapshotSlots is the snapshot ring capacity (default 4).
	SnapshotSlots int
	// Live folds the CPG incrementally while the workload executes, so
	// Query answers against the newest completed epoch *during* Run
	// instead of only after it returns — the paper's online-provenance
	// property. Epoch and WaitEpoch expose the fold progress.
	// Incompatible with Native (there is no graph to fold).
	Live bool
	// FoldWorkers caps the worker goroutines each incremental fold (the
	// Live pipeline's epochs and the Journal recorder's delta folds)
	// fans data-edge derivation across. 0 means GOMAXPROCS, 1 forces
	// serial folds; negative values are rejected. Small epochs use fewer
	// workers regardless. Meaningless without Live or Journal.
	FoldWorkers int
	// Journal, when set, makes recording crash-durable: every sealed
	// epoch is appended to a write-ahead journal in this directory as a
	// length-prefixed, CRC-checksummed delta, synchronously at the
	// commit boundary. If the process dies mid-run, inspector-recover
	// (or journal.Recover) replays the journal up to the last durable
	// epoch and marks the result degraded with a truncated-tail gap.
	// The directory must not already contain a journal. Incompatible
	// with Native (there is nothing to journal).
	Journal string
	// JournalFsync selects the journal's fsync policy: "always" (fsync
	// every record — the strongest durability, one fsync per epoch),
	// "interval" or "interval:N" (fsync every N records, default 16),
	// or "none" (leave flushing to the OS; a machine crash may lose the
	// tail, a process crash does not). Empty means "interval".
	JournalFsync string
	// JournalEverySeals folds one journal epoch each N sealed
	// sub-computations (default 1: every commit boundary journals an
	// epoch — the tightest recovery point at the highest write rate).
	JournalEverySeals int
}

// Runtime is one provenance-recording execution context.
type Runtime struct {
	rt    *threading.Runtime
	snaps *snapshot.Snapshotter

	// live is the epoch-folding analysis pipeline (Options.Live); when
	// set, Query serves the newest epoch instead of the lazy post-Run
	// engine.
	live *provenance.LiveEngine

	// jrec journals epoch deltas at commit boundaries (Options.Journal);
	// Run seals the journal when the workload completes.
	jrec *journal.Recorder

	engineOnce sync.Once
	engine     *provenance.Engine
}

// ErrBadOptions tags Options validation failures from New.
var ErrBadOptions = errors.New("inspector: bad options")

// validate rejects option values that New used to accept silently (and
// then misbehaved on deep in the substrate). Zero values mean "use the
// default" and always pass.
func (o Options) validate() error {
	if o.MaxThreads < 0 {
		return fmt.Errorf("%w: MaxThreads %d is negative (0 means the default of 64)",
			ErrBadOptions, o.MaxThreads)
	}
	if o.PageSize != 0 {
		if o.PageSize < 64 {
			return fmt.Errorf("%w: PageSize %d below the 64-byte minimum (0 means the default of 4096)",
				ErrBadOptions, o.PageSize)
		}
		if o.PageSize&(o.PageSize-1) != 0 {
			return fmt.Errorf("%w: PageSize %d is not a power of two", ErrBadOptions, o.PageSize)
		}
	}
	if o.SnapshotSlots < 0 {
		return fmt.Errorf("%w: SnapshotSlots %d is negative (0 means the default of 4)",
			ErrBadOptions, o.SnapshotSlots)
	}
	if o.Live && o.Native {
		return fmt.Errorf("%w: Live requires provenance tracking (drop Native)", ErrBadOptions)
	}
	if o.FoldWorkers < 0 {
		return fmt.Errorf("%w: FoldWorkers %d is negative (0 means GOMAXPROCS)",
			ErrBadOptions, o.FoldWorkers)
	}
	if o.Journal != "" && o.Native {
		return fmt.Errorf("%w: Journal requires provenance tracking (drop Native)", ErrBadOptions)
	}
	if o.JournalFsync != "" {
		if _, _, err := journal.ParsePolicy(o.JournalFsync); err != nil {
			return fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
	}
	if o.JournalEverySeals < 0 {
		return fmt.Errorf("%w: JournalEverySeals %d is negative (0 means every seal)",
			ErrBadOptions, o.JournalEverySeals)
	}
	return nil
}

// New creates a runtime. Options are validated up front: a negative
// MaxThreads or SnapshotSlots, or a PageSize that is set but below 64
// or not a power of two, fail with an error wrapping ErrBadOptions.
func New(opts Options) (*Runtime, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	mode := threading.ModeInspector
	if opts.Native {
		mode = threading.ModeNative
	}
	traceMode := perf.ModeFullTrace
	if opts.SnapshotMode {
		traceMode = perf.ModeSnapshot
	}
	inner, err := threading.NewRuntime(threading.Options{
		AppName:    opts.AppName,
		Mode:       mode,
		MaxThreads: opts.MaxThreads,
		PageSize:   opts.PageSize,
		TraceMode:  traceMode,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{rt: inner}
	if opts.Journal != "" && !opts.Native {
		policy, syncEvery, err := journal.ParsePolicy(opts.JournalFsync)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
		}
		w, err := journal.Create(journal.Options{
			Dir:       opts.Journal,
			Threads:   inner.Graph().Threads(),
			App:       opts.AppName,
			Fsync:     policy,
			SyncEvery: syncEvery,
		})
		if err != nil {
			return nil, err
		}
		rt.jrec = journal.NewRecorder(inner.Graph(), w, opts.JournalEverySeals)
		rt.jrec.SetFoldWorkers(opts.FoldWorkers)
		// The journal hook registers first: an epoch must be durable
		// before any later hook (fault injection in the harness kills
		// the process from a commit hook) can observe its seal.
		inner.RegisterCommitHook(rt.jrec.CommitHook())
	}
	if opts.SnapshotMode && !opts.Native {
		every := opts.SnapshotEverySyncs
		if every == 0 {
			every = 64
		}
		s, err := snapshot.New(inner, snapshot.Options{
			Slots:      opts.SnapshotSlots,
			EverySyncs: every,
		})
		if err != nil {
			return nil, err
		}
		rt.snaps = s
		inner.RegisterSnapshotHook(s.Hook())
	}
	if opts.Live && !opts.Native {
		rt.live = provenance.NewLiveEngine(inner.Graph(), provenance.EngineOptions{
			FoldWorkers: opts.FoldWorkers,
		})
		inner.RegisterCommitHook(func(core.SubID) { rt.live.Notify() })
	}
	return rt, nil
}

// Run executes main as the program's first thread and returns the run
// report. Run may be called once per Runtime. Under Options.Live the
// final analysis epoch is folded before Run returns, so queries issued
// afterwards always see the complete graph.
func (r *Runtime) Run(main func(*Thread)) (*Report, error) {
	rep, err := r.rt.Run(main)
	if r.live != nil {
		if cerr := r.live.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if r.jrec != nil {
		// A clean close folds the final epoch and seals the journal;
		// recovery then reads it as complete rather than cut short.
		if jerr := r.jrec.Close(); jerr != nil && err == nil {
			err = fmt.Errorf("journal: %w", jerr)
		}
	}
	return rep, err
}

// MapInput maps input data into the tracked address space (the mmap'd
// input file of the paper's input shim) and returns its base address.
func (r *Runtime) MapInput(name string, data []byte) (Addr, error) {
	return r.rt.MapInput(name, data)
}

// NewMutex creates a named mutex.
func (r *Runtime) NewMutex(name string) *Mutex { return r.rt.NewMutex(name) }

// NewBarrier creates a named barrier for n participants.
func (r *Runtime) NewBarrier(name string, n int) *Barrier { return r.rt.NewBarrier(name, n) }

// NewSemaphore creates a named counting semaphore.
func (r *Runtime) NewSemaphore(name string, initial int) *Semaphore {
	return r.rt.NewSemaphore(name, initial)
}

// NewCond creates a condition variable tied to m.
func (r *Runtime) NewCond(name string, m *Mutex) *Cond { return r.rt.NewCond(name, m) }

// GlobalsBase returns the base address of the shared globals region.
func (r *Runtime) GlobalsBase() Addr { return r.rt.GlobalsBase() }

// CPG returns the recorded Concurrent Provenance Graph.
func (r *Runtime) CPG() *CPG { return r.rt.Graph() }

// Query executes one typed provenance question against the recorded
// CPG — the same API cpg-query and inspector-serve expose, run in
// process. Cancellation is honored mid-traversal: a canceled ctx stops
// the closure walk and returns the context's error.
//
// Without Options.Live, call it after Run returns: the first Query
// analyzes the graph once and caches the engine, so repeated queries
// (and concurrent queries from several goroutines) share one immutable
// analysis.
//
// With Options.Live, Query may be called at any time — including from
// other goroutines while Run is still executing. Each call pins the
// newest completed epoch's immutable analysis: results cover every
// sub-computation sealed up to that epoch's causally consistent cut and
// carry the epoch id (QueryResult.Epoch). Cursors are valid against the
// epoch that issued them; WaitEpoch subscribes to fold progress.
func (r *Runtime) Query(ctx context.Context, q Query) (*QueryResult, error) {
	if r.live != nil {
		return r.live.Engine().Execute(ctx, q)
	}
	r.engineOnce.Do(func() {
		r.engine = provenance.NewEngine(r.rt.Graph().Analyze(), provenance.EngineOptions{})
	})
	return r.engine.Execute(ctx, q)
}

// ErrNotLive tags live-only calls on a runtime built without
// Options.Live.
var ErrNotLive = errors.New("inspector: runtime not in live mode (set Options.Live)")

// Epoch returns the newest completed analysis epoch (≥ 1 once the
// runtime exists; the pipeline folds epoch 1 eagerly). It requires
// Options.Live and returns 0 otherwise.
func (r *Runtime) Epoch() uint64 {
	if r.live == nil {
		return 0
	}
	return r.live.Epoch()
}

// WaitEpoch blocks until the live analysis has folded epoch min (or
// further) and returns the epoch that satisfied the wait — the
// Subscribe primitive for monitors that follow a run's provenance as it
// grows. It fails with ErrNotLive without Options.Live, with ctx's
// error if the context ends first, and with provenance.ErrLiveClosed if
// the final epoch has been folded and still falls short of min.
func (r *Runtime) WaitEpoch(ctx context.Context, min uint64) (uint64, error) {
	if r.live == nil {
		return 0, ErrNotLive
	}
	return r.live.WaitEpoch(ctx, min)
}

// WriteDOT renders the CPG in Graphviz form.
func (r *Runtime) WriteDOT(w io.Writer) error { return r.rt.Graph().WriteDOT(w) }

// WriteCPG serializes the CPG (gob) for offline analysis with cpg-query.
func (r *Runtime) WriteCPG(w io.Writer) error { return r.rt.Graph().EncodeGob(w) }

// DecodeTraces decodes every thread's PT trace against the program image,
// returning per-PID reconstructed branch-event counts. It fails if any
// trace does not reconstruct — the end-to-end check that the compressed
// packet streams carry the full control flow.
func (r *Runtime) DecodeTraces() (map[int32]int, error) { return r.rt.DecodeTraces() }

// Snapshots returns the retained consistent-cut snapshots, oldest first.
//
// The snapshot facility only exists when the runtime was created with
// Options.SnapshotMode set (and not Native): without it, Snapshots
// always returns nil — indistinguishable from "snapshot mode is on but
// nothing has been captured yet". Callers that need to tell the two
// apart should check the ok result of TakeSnapshot, which reports
// whether the facility is available at all.
func (r *Runtime) Snapshots() []*Snapshot {
	if r.snaps == nil {
		return nil
	}
	return r.snaps.Snapshots()
}

// TakeSnapshot forces an immediate consistent cut (the SIGUSR2 trigger
// of the paper's perf integration) and stores it in the snapshot ring.
//
// The ok result reports whether the snapshot facility exists: it is
// false — with a nil snapshot — when the runtime was created without
// Options.SnapshotMode (or with Native set), and true otherwise. This
// is the contract that distinguishes "snapshot mode is off" from "an
// empty capture": with ok true the returned snapshot is never nil, even
// when the cut it captures contains no sub-computations yet.
func (r *Runtime) TakeSnapshot() (*Snapshot, bool) {
	if r.snaps == nil {
		return nil, false
	}
	return r.snaps.TakeSnapshot(), true
}

// Unwrap exposes the underlying threading runtime for advanced use
// (harnesses, benchmarks).
func (r *Runtime) Unwrap() *threading.Runtime { return r.rt }
