package main

import (
	"testing"

	"github.com/repro/inspector/internal/workloads"
)

func TestParseSize(t *testing.T) {
	for in, want := range map[string]workloads.Size{
		"small": workloads.Small, "medium": workloads.Medium, "large": workloads.Large,
	} {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseSize("huge"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("2, 4,8")
	if err != nil || len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 8 {
		t.Errorf("parseThreads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "0", "-1", "2,,4"} {
		if _, err := parseThreads(bad); err == nil {
			t.Errorf("parseThreads(%q) accepted", bad)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-size", "zzz"}); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRunSingleAppTable7(t *testing.T) {
	// Smallest possible end-to-end CLI run.
	err := run([]string{"-experiment", "table7", "-size", "small", "-apps", "histogram", "-breakdown", "2", "-threads", "2"})
	if err != nil {
		t.Fatal(err)
	}
}
