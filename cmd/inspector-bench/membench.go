package main

// The mem experiment: self-timed microbenchmarks of the tracked-memory
// substrate, mirroring internal/mem's go-test benchmark suite
// (BenchmarkDiff, BenchmarkCommit, BenchmarkReadWrite, BenchmarkReadClean)
// so the perf trajectory of the hot path is tracked in a committed
// BENCH_mem.json snapshot from PR to PR. See ROADMAP.md ("perf trajectory
// convention") for the regeneration workflow.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/repro/inspector/internal/mem"
)

// memBenchSchema versions the BENCH_mem.json format.
const memBenchSchema = "inspector-membench/v1"

// memBenchResult is one benchmark row of BENCH_mem.json.
type memBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// memBenchSnapshot is the BENCH_mem.json document. Baseline carries the
// numbers of a reference implementation (the pre-optimization seed when
// this convention was introduced) so the file itself documents the
// trajectory; Benchmarks holds the current tree's numbers.
type memBenchSnapshot struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go"`
	GOARCH     string           `json:"goarch"`
	PageSize   int              `json:"page_size"`
	Baseline   []memBenchResult `json:"baseline,omitempty"`
	BaselineAt string           `json:"baseline_at,omitempty"`
	Benchmarks []memBenchResult `json:"benchmarks"`
}

const memBenchBase = mem.Addr(0x4000_0000)

func memBenchBacking() *mem.Backing {
	b, err := mem.NewBacking("heap", memBenchBase, 64<<20, mem.DefaultPageSize)
	if err != nil {
		panic(err)
	}
	return b
}

func memBenchSpace() *mem.Space {
	return mem.NewSpace(1, []*mem.Backing{memBenchBacking()}, nil, true)
}

// memDiffPage mirrors the diff patterns of internal/mem's BenchmarkDiff.
func memDiffPage(pattern string) (priv, twin []byte) {
	priv = make([]byte, mem.DefaultPageSize)
	twin = make([]byte, mem.DefaultPageSize)
	switch pattern {
	case "identical":
	case "sparse":
		priv[100] = 1
		priv[3000] = 2
	case "words":
		for i := 0; i < len(priv); i += 64 {
			priv[i] = byte(i)
		}
	case "dense":
		for i := range priv {
			priv[i] = byte(i + 1)
		}
	}
	return priv, twin
}

// memBenchCases returns the substrate scenarios, each as a testing.B body.
func memBenchCases() []struct {
	name  string
	bytes int64
	fn    func(b *testing.B)
} {
	type kase = struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}
	var cases []kase
	for _, pattern := range []string{"identical", "sparse", "words", "dense"} {
		priv, twin := memDiffPage(pattern)
		cases = append(cases, kase{
			name:  "Diff/" + pattern,
			bytes: mem.DefaultPageSize,
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mem.Diff(priv, twin, 8)
				}
			},
		})
	}
	cases = append(cases, kase{
		name:  "Commit",
		bytes: 16 * mem.DefaultPageSize,
		fn: func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			var line [64]byte
			for i := range line {
				line[i] = byte(i + 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := 0; p < pages; p++ {
					a := memBenchBase + mem.Addr(p*mem.DefaultPageSize+(i%32)*64)
					if _, err := s.Write(a, line[:]); err != nil {
						b.Fatal(err)
					}
				}
				s.Commit()
			}
		},
	})
	readWrite := func(stride mem.Addr) func(b *testing.B) {
		return func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			for p := 0; p < pages; p++ {
				if _, err := s.StoreU64(memBenchBase+mem.Addr(p*mem.DefaultPageSize), 1); err != nil {
					b.Fatal(err)
				}
			}
			span := mem.Addr(pages * mem.DefaultPageSize)
			b.ResetTimer()
			var a mem.Addr
			for i := 0; i < b.N; i++ {
				addr := memBenchBase + a
				v, err := s.LoadU64(addr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.StoreU64(addr, v+1); err != nil {
					b.Fatal(err)
				}
				a += stride
				if a >= span {
					a = (a + 8) % 4096 % span
				}
			}
		}
	}
	cases = append(cases,
		kase{name: "ReadWrite/seq", fn: readWrite(8)},
		kase{name: "ReadWrite/strided", fn: readWrite(mem.DefaultPageSize)},
		kase{name: "ReadClean", fn: func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			var buf [8]byte
			for p := 0; p < pages; p++ {
				if err := s.Read(memBenchBase+mem.Addr(p*mem.DefaultPageSize), buf[:]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var a mem.Addr
			for i := 0; i < b.N; i++ {
				if _, err := s.LoadU64(memBenchBase + a); err != nil {
					b.Fatal(err)
				}
				a = (a + 8) % (pages * mem.DefaultPageSize)
			}
		}},
	)
	return cases
}

// runMemBench measures the substrate scenarios and writes the snapshot.
// baselinePath, when non-empty, names an earlier BENCH_mem.json whose
// baseline section (or, if it has none, its benchmarks) is carried
// forward, so regeneration keeps comparing against the original reference.
func runMemBench(w io.Writer, outPath, baselinePath string) error {
	snap := memBenchSnapshot{
		Schema:    memBenchSchema,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		PageSize:  mem.DefaultPageSize,
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		var prev memBenchSnapshot
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		snap.Baseline = prev.Baseline
		snap.BaselineAt = prev.BaselineAt
		if len(snap.Baseline) == 0 {
			snap.Baseline = prev.Benchmarks
		}
	}
	for _, c := range memBenchCases() {
		res := testing.Benchmark(c.fn)
		row := memBenchResult{
			Name:        c.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if c.bytes > 0 && res.T > 0 {
			row.MBPerSec = float64(c.bytes) * float64(res.N) / 1e6 / res.T.Seconds()
		}
		snap.Benchmarks = append(snap.Benchmarks, row)
		fmt.Fprintf(w, "%-20s %12.1f ns/op %8d B/op %6d allocs/op\n",
			c.name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
