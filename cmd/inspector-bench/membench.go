package main

// The mem experiment: self-timed microbenchmarks of the tracked-memory
// substrate, mirroring internal/mem's go-test benchmark suite
// (BenchmarkDiff, BenchmarkCommit, BenchmarkReadWrite, BenchmarkReadClean)
// so the perf trajectory of the hot path is tracked in a committed
// BENCH_mem.json snapshot from PR to PR. See ROADMAP.md ("perf trajectory
// convention") for the regeneration workflow.

import (
	"io"
	"testing"

	"github.com/repro/inspector/internal/mem"
)

// memBenchSchema versions the BENCH_mem.json format.
const memBenchSchema = "inspector-membench/v1"

const memBenchBase = mem.Addr(0x4000_0000)

func memBenchBacking() *mem.Backing {
	b, err := mem.NewBacking("heap", memBenchBase, 64<<20, mem.DefaultPageSize)
	if err != nil {
		panic(err)
	}
	return b
}

func memBenchSpace() *mem.Space {
	return mem.NewSpace(1, []*mem.Backing{memBenchBacking()}, nil, true)
}

// memDiffPage mirrors the diff patterns of internal/mem's BenchmarkDiff.
func memDiffPage(pattern string) (priv, twin []byte) {
	priv = make([]byte, mem.DefaultPageSize)
	twin = make([]byte, mem.DefaultPageSize)
	switch pattern {
	case "identical":
	case "sparse":
		priv[100] = 1
		priv[3000] = 2
	case "words":
		for i := 0; i < len(priv); i += 64 {
			priv[i] = byte(i)
		}
	case "dense":
		for i := range priv {
			priv[i] = byte(i + 1)
		}
	}
	return priv, twin
}

// memBenchCases returns the substrate scenarios, each as a testing.B body.
func memBenchCases() []benchCase {
	type kase = benchCase
	var cases []kase
	for _, pattern := range []string{"identical", "sparse", "words", "dense"} {
		priv, twin := memDiffPage(pattern)
		cases = append(cases, kase{
			name:  "Diff/" + pattern,
			bytes: mem.DefaultPageSize,
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mem.Diff(priv, twin, 8)
				}
			},
		})
	}
	cases = append(cases, kase{
		name:  "Commit",
		bytes: 16 * mem.DefaultPageSize,
		fn: func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			var line [64]byte
			for i := range line {
				line[i] = byte(i + 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for p := 0; p < pages; p++ {
					a := memBenchBase + mem.Addr(p*mem.DefaultPageSize+(i%32)*64)
					if _, err := s.Write(a, line[:]); err != nil {
						b.Fatal(err)
					}
				}
				s.Commit()
			}
		},
	})
	readWrite := func(stride mem.Addr) func(b *testing.B) {
		return func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			for p := 0; p < pages; p++ {
				if _, err := s.StoreU64(memBenchBase+mem.Addr(p*mem.DefaultPageSize), 1); err != nil {
					b.Fatal(err)
				}
			}
			span := mem.Addr(pages * mem.DefaultPageSize)
			b.ResetTimer()
			var a mem.Addr
			for i := 0; i < b.N; i++ {
				addr := memBenchBase + a
				v, err := s.LoadU64(addr)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.StoreU64(addr, v+1); err != nil {
					b.Fatal(err)
				}
				a += stride
				if a >= span {
					a = (a + 8) % 4096 % span
				}
			}
		}
	}
	cases = append(cases,
		kase{name: "ReadWrite/seq", fn: readWrite(8)},
		kase{name: "ReadWrite/strided", fn: readWrite(mem.DefaultPageSize)},
		kase{name: "ReadClean", fn: func(b *testing.B) {
			const pages = 16
			s := memBenchSpace()
			var buf [8]byte
			for p := 0; p < pages; p++ {
				if err := s.Read(memBenchBase+mem.Addr(p*mem.DefaultPageSize), buf[:]); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var a mem.Addr
			for i := 0; i < b.N; i++ {
				if _, err := s.LoadU64(memBenchBase + a); err != nil {
					b.Fatal(err)
				}
				a = (a + 8) % (pages * mem.DefaultPageSize)
			}
		}},
	)
	return cases
}

// runMemBench measures the substrate scenarios and writes the snapshot
// through the shared baseline-carrying plumbing (benchsnap.go).
func runMemBench(w io.Writer, outPath, baselinePath string) error {
	return runBenchSnapshot(w, outPath, baselinePath, memBenchSchema, mem.DefaultPageSize, memBenchCases())
}
