package main

// The cpg experiment: self-timed microbenchmarks of the Concurrent
// Provenance Graph core — the EndSub append path (serial and contended),
// the indexed data-edge derivation, analysis construction, wide slices,
// invariant checking, and the page-set hot path — plus the provenance
// query engine (slice and taint, serial and 8-way parallel) and the
// bounded-memory CPG store (cold decode-under-eviction vs warm
// result-cache hits over 16- and 256-file fleets). The scenario bodies
// live in internal/core/cpgbench, provenance/enginebench, and
// provenance/storebench — shared verbatim with those packages' go-test
// suites — and the snapshot goes through the same baseline-carrying
// plumbing as the mem and pt experiments (benchsnap.go). The committed
// baseline is the pre-columnar core (global RWMutex, map page sets,
// string thunks, map adjacency); the QueryEngine rows have no baseline
// counterpart (the engine is new with the provenance package). See
// ROADMAP.md ("perf trajectory convention") for the regeneration
// workflow.

import (
	"io"

	"github.com/repro/inspector/internal/core/cpgbench"
	"github.com/repro/inspector/provenance/enginebench"
	"github.com/repro/inspector/provenance/storebench"
)

// cpgBenchSchema versions the BENCH_cpg.json format.
const cpgBenchSchema = "inspector-cpgbench/v1"

// runCPGBench measures the shared CPG-core and query-engine scenarios
// and writes the BENCH_cpg.json snapshot.
func runCPGBench(w io.Writer, outPath, baselinePath string) error {
	var cases []benchCase
	for _, c := range cpgbench.Cases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	// The live-pipeline rows (IncrementalAnalyze vs ReAnalyze at a
	// 1/8/64-epoch cadence, plus the 8-worker Parallel variants) have no
	// baseline counterpart: before the incremental fold existed, serving
	// queries mid-run was impossible — ReAnalyze *is* the naive
	// alternative, snapshotted alongside. The Large rows scale the same
	// comparison to a >=10^6-vertex execution, where
	// IncrementalAnalyzeLarge/serial is the retained full-rebuild
	// reference fold the delta-overlay store replaces.
	for _, c := range cpgbench.LiveCases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	for _, c := range cpgbench.LargeCases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	for _, c := range enginebench.Cases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	// The Store rows (cold decode-under-eviction vs warm result-cache
	// hit over 16- and 256-file fleets) likewise have no baseline
	// counterpart: before the on-disk columnar format existed, serving a
	// directory of CPGs meant eagerly decoding every gob up front.
	for _, c := range storebench.Cases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	return runBenchSnapshot(w, outPath, baselinePath, cpgBenchSchema, 0, cases)
}
