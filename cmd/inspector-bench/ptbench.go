package main

// The pt experiment: self-timed microbenchmarks of the branch-trace
// pipeline hot loop. The scenario bodies live in internal/pt/ptbench —
// shared verbatim with internal/pt's go-test suite — and the snapshot
// goes through the same baseline-carrying plumbing as the mem
// experiment (benchsnap.go). See ROADMAP.md ("perf trajectory
// convention") for the regeneration workflow.

import (
	"io"

	"github.com/repro/inspector/internal/pt/ptbench"
)

// ptBenchSchema versions the BENCH_pt.json format.
const ptBenchSchema = "inspector-ptbench/v1"

// runPTBench measures the shared branch-trace scenarios and writes the
// BENCH_pt.json snapshot.
func runPTBench(w io.Writer, outPath, baselinePath string) error {
	var cases []benchCase
	for _, c := range ptbench.Cases() {
		cases = append(cases, benchCase{name: c.Name, bytes: c.Bytes, fn: c.Fn})
	}
	return runBenchSnapshot(w, outPath, baselinePath, ptBenchSchema, 0, cases)
}
