package main

// Shared plumbing for the self-timed benchmark experiments (mem, pt):
// one snapshot document format, one baseline-carrying convention, one
// measurement loop. Each experiment contributes only its schema string
// and scenario list.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
)

// benchCase is one self-timed scenario.
type benchCase struct {
	name string
	// bytes, when non-zero, is the payload size per op for MB/s.
	bytes int64
	fn    func(b *testing.B)
}

// benchResult is one benchmark row of a BENCH_*.json snapshot. The
// latency-distribution fields are present only on rows whose scenario
// reports them (the Store/* rows via b.ReportMetric).
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	// FramesPerSec is the fabric soak's ingest throughput.
	FramesPerSec float64 `json:"frames_per_s,omitempty"`
	// ResidentBytes is the store's decoded-graph estimate at the end of
	// the run — the number the resident budget bounds.
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
}

// benchSnapshot is the BENCH_*.json document. Baseline carries the
// numbers of a reference implementation (the pre-optimization seed when
// the experiment's convention was introduced) so the file itself
// documents the trajectory; Benchmarks holds the current tree's numbers.
type benchSnapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go"`
	GOARCH     string        `json:"goarch"`
	PageSize   int           `json:"page_size,omitempty"`
	Baseline   []benchResult `json:"baseline,omitempty"`
	BaselineAt string        `json:"baseline_at,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBenchSnapshot measures every case and writes the snapshot.
// baselinePath, when non-empty, names an earlier snapshot whose baseline
// section (or, if it has none, its benchmarks) is carried forward, so
// regeneration keeps comparing against the original reference.
func runBenchSnapshot(w io.Writer, outPath, baselinePath, schema string, pageSize int, cases []benchCase) error {
	snap := benchSnapshot{
		Schema:    schema,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		PageSize:  pageSize,
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		var prev benchSnapshot
		if err := json.Unmarshal(data, &prev); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		snap.Baseline = prev.Baseline
		snap.BaselineAt = prev.BaselineAt
		if len(snap.Baseline) == 0 {
			snap.Baseline = prev.Benchmarks
		}
	}
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		row := benchResult{
			Name:        c.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if c.bytes > 0 && res.T > 0 {
			row.MBPerSec = float64(c.bytes) * float64(res.N) / 1e6 / res.T.Seconds()
		}
		row.P50Ns = res.Extra["p50_ns"]
		row.P99Ns = res.Extra["p99_ns"]
		row.FramesPerSec = res.Extra["frames/s"]
		row.ResidentBytes = int64(res.Extra["resident_B"])
		snap.Benchmarks = append(snap.Benchmarks, row)
		fmt.Fprintf(w, "%-20s %12.1f ns/op %8d B/op %6d allocs/op\n",
			c.name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
