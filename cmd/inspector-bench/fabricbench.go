package main

// The fabric experiment: load/soak scenarios of the distributed
// provenance fabric (internal/harness/loadtest) — M streaming recorders
// uploading epoch-delta frames to one aggregator while N clients query
// and watch it. Every iteration enforces the fabric contract (zero
// dropped epochs, byte-identical exports), so the numbers in
// BENCH_fabric.json are throughput/latency of *correct* runs only.
// There is no pre-fabric baseline: before the ingest wire existed, the
// aggregator had nothing to aggregate.

import (
	"io"
	"testing"

	"github.com/repro/inspector/internal/harness/loadtest"
)

// fabricBenchSchema versions the BENCH_fabric.json format.
const fabricBenchSchema = "inspector-fabricbench/v1"

// fabricCase wraps one soak configuration as a self-timed scenario,
// reporting ingest throughput and query latency quantiles.
func fabricCase(name string, opts loadtest.Options) benchCase {
	return benchCase{name: name, fn: func(b *testing.B) {
		var frames, p50, p99 float64
		for i := 0; i < b.N; i++ {
			opts.Seed = int64(i + 1)
			rep, err := loadtest.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			frames += rep.FramesPerSec
			p50 += float64(rep.QueryP50Ns)
			p99 += float64(rep.QueryP99Ns)
		}
		n := float64(b.N)
		b.ReportMetric(frames/n, "frames/s")
		b.ReportMetric(p50/n, "p50_ns")
		b.ReportMetric(p99/n, "p99_ns")
	}}
}

// runFabricBench measures the soak scenarios and writes the
// BENCH_fabric.json snapshot.
func runFabricBench(w io.Writer, outPath, baselinePath string) error {
	cases := []benchCase{
		fabricCase("Fabric/2rec-8cli", loadtest.Options{Recorders: 2, Clients: 8, Steps: 200}),
		fabricCase("Fabric/4rec-16cli", loadtest.Options{Recorders: 4, Clients: 16, Steps: 200}),
		fabricCase("Fabric/1rec-32cli", loadtest.Options{Recorders: 1, Clients: 32, Steps: 300}),
	}
	return runBenchSnapshot(w, outPath, baselinePath, fabricBenchSchema, 0, cases)
}
