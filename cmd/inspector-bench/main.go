// Command inspector-bench regenerates the paper's evaluation artifacts
// (Figures 5, 6, 8 and Tables 7, 9 of ICDCS'16) on the simulated
// substrate.
//
// Usage:
//
//	inspector-bench [flags]
//
//	-experiment all|fig5|fig6|table7|fig8|table9|mem|pt|cpg|fabric
//	-size small|medium|large     input scale for fig5/fig6/tables
//	-threads 2,4,8,16            thread sweep for fig5
//	-breakdown 16                thread count for fig6/tables
//	-apps a,b,c                  restrict to a subset of the 12 apps
//	-seed 1                      input-generation seed
//	-out path                    mem/pt/cpg/fabric output path ("-" = stdout)
//	-baseline path               prior BENCH_{mem,pt,cpg,fabric}.json whose baseline carries forward
//	-cpuprofile path             write a CPU profile of the whole run
//	-memprofile path             write a post-GC heap profile at exit
//
// The mem experiment benchmarks the tracked-memory substrate hot path
// (diff, commit, read/write fast path) and writes the BENCH_mem.json
// snapshot that records the repo's perf trajectory; the pt experiment
// does the same for the branch-trace pipeline (encode, decode, round
// trip) into BENCH_pt.json, the cpg experiment for the provenance
// graph core (vertex append, data-edge derivation, analysis, queries)
// into BENCH_cpg.json, and the fabric experiment soaks the distributed
// ingest wire (M streaming recorders × N query/watch clients) into
// BENCH_fabric.json with ingest frames/s and query latency quantiles.
//
// Absolute numbers come from the deterministic virtual-time model, not
// the authors' Xeon D-1540; the claims to compare are relative (who is
// slower, by what factor, where the outliers are).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/repro/inspector/internal/harness"
	"github.com/repro/inspector/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "inspector-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("inspector-bench", flag.ContinueOnError)
	experiment := fs.String("experiment", "all", "experiment to run: all|fig5|work|fig6|table7|fig8|table9|mem|pt|cpg|fabric")
	sizeFlag := fs.String("size", "medium", "input size: small|medium|large")
	threadsFlag := fs.String("threads", "2,4,8,16", "comma-separated thread sweep for fig5")
	breakdown := fs.Int("breakdown", 16, "thread count for fig6/table7/fig8/table9")
	appsFlag := fs.String("apps", "", "comma-separated subset of applications (default all)")
	seed := fs.Int64("seed", 1, "input generation seed")
	outPath := fs.String("out", "", `mem/pt/cpg/fabric experiment output path ("-" = stdout; default BENCH_<experiment>.json)`)
	baseline := fs.String("baseline", "", "prior BENCH_{mem,pt,cpg,fabric}.json whose baseline section carries forward")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")
	memProfile := fs.String("memprofile", "", "write a heap profile (post-GC, at exit) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	if *experiment == "mem" || *experiment == "pt" || *experiment == "cpg" || *experiment == "fabric" {
		out := *outPath
		if out == "" {
			out = "BENCH_" + *experiment + ".json"
		}
		// With the JSON on stdout, progress lines move to stderr so the
		// output stays pipeable.
		progress := io.Writer(os.Stdout)
		if out == "-" {
			progress = os.Stderr
		}
		switch *experiment {
		case "pt":
			return runPTBench(progress, out, *baseline)
		case "cpg":
			return runCPGBench(progress, out, *baseline)
		case "fabric":
			return runFabricBench(progress, out, *baseline)
		default:
			return runMemBench(progress, out, *baseline)
		}
	}

	size, err := parseSize(*sizeFlag)
	if err != nil {
		return err
	}
	threads, err := parseThreads(*threadsFlag)
	if err != nil {
		return err
	}
	var apps []string
	if *appsFlag != "" {
		apps = strings.Split(*appsFlag, ",")
	}

	h := harness.New(harness.Options{
		Size:             size,
		Threads:          threads,
		BreakdownThreads: *breakdown,
		Seed:             *seed,
		Apps:             apps,
	})

	out := os.Stdout
	switch *experiment {
	case "all":
		res, err := h.All()
		if err != nil {
			return err
		}
		return h.WriteAll(out, res)
	case "fig5":
		rows, err := h.Figure5()
		if err != nil {
			return err
		}
		return h.WriteFigure5(out, rows)
	case "work":
		rows, err := h.Figure5()
		if err != nil {
			return err
		}
		return h.WriteWork(out, rows)
	case "fig6":
		rows, err := h.Figure6()
		if err != nil {
			return err
		}
		return h.WriteFigure6(out, rows)
	case "table7":
		rows, err := h.Table7()
		if err != nil {
			return err
		}
		return h.WriteTable7(out, rows)
	case "fig8":
		rows, err := h.Figure8()
		if err != nil {
			return err
		}
		return h.WriteFigure8(out, rows)
	case "table9":
		rows, err := h.Table9()
		if err != nil {
			return err
		}
		return h.WriteTable9(out, rows)
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

// writeHeapProfile snapshots the live heap after a forced GC so the
// profile reflects retained allocations, not transient garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func parseSize(s string) (workloads.Size, error) {
	switch s {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	default:
		return 0, fmt.Errorf("unknown size %q", s)
	}
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
