package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/repro/inspector/internal/perf"
)

func TestRunOnGeneratedSession(t *testing.T) {
	// Build a session with a few records and a raw trace, serialize it,
	// and make sure pt-dump walks it without error.
	sess := perf.NewSession(perf.SessionOptions{AutoDrain: true})
	st, ok := sess.Attach(7)
	if !ok {
		t.Fatal("attach failed")
	}
	sess.RecordComm(7, "demo")
	sess.RecordMMAP(7, 0x400000, 4096, "demo.text")
	// A short TNT packet (0b0101100 -> bits) plus a PAD.
	st.WriteTrace([]byte{0x2C, 0x00})
	sess.RecordExit(7)

	path := filepath.Join(t.TempDir(), "s.perfdata")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Serialize(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{path}); err != nil {
		t.Fatalf("plain dump: %v", err)
	}
	if err := run([]string{"-packets", "-max", "8", path}); err != nil {
		t.Fatalf("packet dump: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.perfdata"}); err == nil {
		t.Error("missing file accepted")
	}
}
