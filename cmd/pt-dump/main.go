// Command pt-dump decodes a perf session file produced by the INSPECTOR
// runtime (perf.Session.Serialize) and prints its records, including a
// packet-level dump of each AUX trace — the equivalent of
// `perf script --dump` plus the Intel PT packet decoder.
//
// With -events and an image sidecar (inspector-run -imageout), it
// additionally reconstructs each process's control-flow events, printing
// them one at a time as Decoder.Next produces them — the full trace is
// never materialized, so dumps stay flat in memory no matter how long
// the trace is.
//
// Usage:
//
//	pt-dump [-packets] [-max N] file.perfdata
//	pt-dump -events -image file.image [-maxev N] file.perfdata
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/repro/inspector/internal/image"
	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/pt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pt-dump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pt-dump", flag.ContinueOnError)
	packets := fs.Bool("packets", false, "dump individual PT packets of AUX records")
	maxPkts := fs.Int("max", 64, "maximum packets to dump per AUX record")
	events := fs.Bool("events", false, "reconstruct control-flow events per PID (needs -image)")
	imagePath := fs.String("image", "", "image sidecar written by inspector-run -imageout")
	maxEvents := fs.Int("maxev", 0, "maximum events to dump per PID (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: pt-dump [-packets] [-events -image file.image] file.perfdata")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := perf.ReadRecords(f)
	if err != nil {
		return err
	}
	if *events {
		if *imagePath == "" {
			return errors.New("-events needs -image (see inspector-run -imageout)")
		}
		imf, err := os.Open(*imagePath)
		if err != nil {
			return err
		}
		im, err := image.ReadImage(imf)
		imf.Close()
		if err != nil {
			return err
		}
		return dumpEvents(os.Stdout, im, records, *maxEvents)
	}
	for i, rec := range records {
		switch rec.Type {
		case perf.RecordMMAP:
			fmt.Printf("%4d %-12s pid=%d time=%d addr=%#x len=%d file=%s\n",
				i, rec.Type, rec.PID, rec.Time, rec.Addr, rec.MapLen, rec.Filename)
		case perf.RecordCOMM:
			fmt.Printf("%4d %-12s pid=%d time=%d comm=%s\n", i, rec.Type, rec.PID, rec.Time, rec.Comm)
		case perf.RecordLOST:
			fmt.Printf("%4d %-12s pid=%d time=%d lost=%d bytes\n", i, rec.Type, rec.PID, rec.Time, rec.LostBytes)
		case perf.RecordAUX:
			fmt.Printf("%4d %-12s pid=%d time=%d size=%d bytes\n", i, rec.Type, rec.PID, rec.Time, len(rec.Data))
			if *packets {
				dumpPackets(rec.Data, *maxPkts)
			}
		default:
			fmt.Printf("%4d %-12s pid=%d time=%d\n", i, rec.Type, rec.PID, rec.Time)
		}
	}
	return nil
}

// dumpPackets walks the raw packet stream, printing each packet.
func dumpPackets(data []byte, limit int) {
	var lastIP uint64
	off := 0
	count := 0
	for off < len(data) && count < limit {
		p, ip, err := pt.DecodePacket(data[off:], lastIP)
		if err != nil {
			fmt.Printf("       %06x: decode error: %v (skipping to end)\n", off, err)
			return
		}
		lastIP = ip
		switch p.Type {
		case pt.PktTNT:
			bits := make([]byte, p.TNTLen)
			for i := range bits {
				if p.TNTBit(i) {
					bits[i] = 'T'
				} else {
					bits[i] = 'N'
				}
			}
			fmt.Printf("       %06x: %-8s %s\n", off, p.Type, bits)
		case pt.PktTIP, pt.PktTIPPGE, pt.PktTIPPGD, pt.PktFUP:
			fmt.Printf("       %06x: %-8s ip=%#x\n", off, p.Type, p.IP)
		case pt.PktTSC:
			fmt.Printf("       %06x: %-8s tsc=%d\n", off, p.Type, p.TSC)
		default:
			fmt.Printf("       %06x: %-8s\n", off, p.Type)
		}
		off += p.Len
		count++
	}
	if off < len(data) {
		fmt.Printf("       ... %d more bytes\n", len(data)-off)
	}
}

// dumpEvents reconstructs control flow per PID, streaming each event out
// of Decoder.Next as it is produced. AUX chunks of one PID feed the same
// decoder through Reset, so the edge table, last-IP state, and queued
// TNT bits carry across ring drains and nothing is ever concatenated or
// collected into a slice.
func dumpEvents(w io.Writer, im *image.Image, records []perf.Record, limit int) error {
	byPID := make(map[int32][][]byte)
	var pids []int32
	for _, rec := range records {
		if rec.Type != perf.RecordAUX {
			continue
		}
		if _, ok := byPID[rec.PID]; !ok {
			pids = append(pids, rec.PID)
		}
		byPID[rec.PID] = append(byPID[rec.PID], rec.Data)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		fmt.Fprintf(w, "pid %d:\n", pid)
		d := pt.NewDecoder(im, nil)
		n := 0
		truncated := false
	chunks:
		for _, chunk := range byPID[pid] {
			d.Reset(chunk)
			lastErrPos := -1
			for {
				ev, err := d.Next()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					fmt.Fprintf(w, "  event %d: %v\n", n, err)
					// Gaps/desyncs advance the cursor toward the next
					// PSB and decoding resumes; only a decoder whose
					// cursor stops moving between errors can never
					// recover — give up on the chunk then.
					if d.Pos() == lastErrPos {
						fmt.Fprintf(w, "  giving up on chunk: decoder stuck at byte %d\n", d.Pos())
						break
					}
					lastErrPos = d.Pos()
					continue
				}
				lastErrPos = -1
				if limit > 0 && n >= limit {
					truncated = true
					break chunks
				}
				fmt.Fprintf(w, "  %6d %s\n", n, ev)
				n++
			}
		}
		suffix := ""
		if truncated {
			suffix = " (truncated)"
		}
		fmt.Fprintf(w, "  %d events, %d gaps%s\n", n, d.Gaps, suffix)
	}
	return nil
}
