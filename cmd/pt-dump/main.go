// Command pt-dump decodes a perf session file produced by the INSPECTOR
// runtime (perf.Session.Serialize) and prints its records, including a
// packet-level dump of each AUX trace — the equivalent of
// `perf script --dump` plus the Intel PT packet decoder.
//
// Usage:
//
//	pt-dump [-packets] [-max N] file.perfdata
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/repro/inspector/internal/perf"
	"github.com/repro/inspector/internal/pt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pt-dump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pt-dump", flag.ContinueOnError)
	packets := fs.Bool("packets", false, "dump individual PT packets of AUX records")
	maxPkts := fs.Int("max", 64, "maximum packets to dump per AUX record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: pt-dump [-packets] file.perfdata")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := perf.ReadRecords(f)
	if err != nil {
		return err
	}
	for i, rec := range records {
		switch rec.Type {
		case perf.RecordMMAP:
			fmt.Printf("%4d %-12s pid=%d time=%d addr=%#x len=%d file=%s\n",
				i, rec.Type, rec.PID, rec.Time, rec.Addr, rec.MapLen, rec.Filename)
		case perf.RecordCOMM:
			fmt.Printf("%4d %-12s pid=%d time=%d comm=%s\n", i, rec.Type, rec.PID, rec.Time, rec.Comm)
		case perf.RecordLOST:
			fmt.Printf("%4d %-12s pid=%d time=%d lost=%d bytes\n", i, rec.Type, rec.PID, rec.Time, rec.LostBytes)
		case perf.RecordAUX:
			fmt.Printf("%4d %-12s pid=%d time=%d size=%d bytes\n", i, rec.Type, rec.PID, rec.Time, len(rec.Data))
			if *packets {
				dumpPackets(rec.Data, *maxPkts)
			}
		default:
			fmt.Printf("%4d %-12s pid=%d time=%d\n", i, rec.Type, rec.PID, rec.Time)
		}
	}
	return nil
}

// dumpPackets walks the raw packet stream, printing each packet.
func dumpPackets(data []byte, limit int) {
	var lastIP uint64
	off := 0
	count := 0
	for off < len(data) && count < limit {
		p, ip, err := pt.DecodePacket(data[off:], lastIP)
		if err != nil {
			fmt.Printf("       %06x: decode error: %v (skipping to end)\n", off, err)
			return
		}
		lastIP = ip
		switch p.Type {
		case pt.PktTNT:
			bits := make([]byte, len(p.TNTBits))
			for i, b := range p.TNTBits {
				if b {
					bits[i] = 'T'
				} else {
					bits[i] = 'N'
				}
			}
			fmt.Printf("       %06x: %-8s %s\n", off, p.Type, bits)
		case pt.PktTIP, pt.PktTIPPGE, pt.PktTIPPGD, pt.PktFUP:
			fmt.Printf("       %06x: %-8s ip=%#x\n", off, p.Type, p.IP)
		case pt.PktTSC:
			fmt.Printf("       %06x: %-8s tsc=%d\n", off, p.Type, p.TSC)
		default:
			fmt.Printf("       %06x: %-8s\n", off, p.Type)
		}
		off += p.Len
		count++
	}
	if off < len(data) {
		fmt.Printf("       ... %d more bytes\n", len(data)-off)
	}
}
