// Command cpg-query runs provenance queries against a Concurrent
// Provenance Graph saved by inspector-run (gob format).
//
// Usage:
//
//	cpg-query -cpg run.gob stats
//	cpg-query -cpg run.gob verify
//	cpg-query -cpg run.gob slice T1.3
//	cpg-query -cpg run.gob taint T0.0
//	cpg-query -cpg run.gob lineage <page> T1.3
//	cpg-query -cpg run.gob edges [control|sync|data]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/repro/inspector/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cpg-query:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cpg-query", flag.ContinueOnError)
	cpgPath := fs.String("cpg", "", "CPG gob file written by inspector-run -cpg")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpgPath == "" || fs.NArg() < 1 {
		return errors.New("usage: cpg-query -cpg file.gob <stats|verify|slice|taint|lineage|edges> [args]")
	}
	f, err := os.Open(*cpgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := core.DecodeGob(f)
	if err != nil {
		return err
	}
	a := g.Analyze()

	switch cmd := fs.Arg(0); cmd {
	case "stats":
		return stats(g, a)
	case "verify":
		if err := a.Verify(); err != nil {
			return err
		}
		fmt.Println("CPG is a valid happens-before DAG")
		return nil
	case "slice":
		id, err := parseSubID(fs.Arg(1))
		if err != nil {
			return err
		}
		for _, anc := range a.Slice(id) {
			fmt.Println(anc)
		}
		return nil
	case "taint":
		id, err := parseSubID(fs.Arg(1))
		if err != nil {
			return err
		}
		for _, d := range a.TaintedBy(id) {
			fmt.Println(d)
		}
		return nil
	case "lineage":
		if fs.NArg() < 3 {
			return errors.New("usage: cpg-query lineage <page> <subID>")
		}
		page, err := strconv.ParseUint(fs.Arg(1), 10, 64)
		if err != nil {
			return fmt.Errorf("bad page %q: %w", fs.Arg(1), err)
		}
		id, err := parseSubID(fs.Arg(2))
		if err != nil {
			return err
		}
		lins := a.PageLineage(page, id)
		if len(lins) == 0 {
			fmt.Println("no recorded writer for that page at that vertex")
			return nil
		}
		for _, l := range lins {
			fmt.Printf("page %d read by %v was written by %v", l.Page, id, l.Writer)
			if len(l.Upstream) > 0 {
				ups := make([]string, len(l.Upstream))
				for i, u := range l.Upstream {
					ups[i] = u.String()
				}
				fmt.Printf(" (upstream sources: %s)", strings.Join(ups, ", "))
			}
			fmt.Println()
		}
		return nil
	case "edges":
		kinds := map[string]core.EdgeKind{
			"control": core.EdgeControl, "sync": core.EdgeSync, "data": core.EdgeData,
		}
		var filter core.EdgeKind
		if fs.NArg() > 1 {
			k, ok := kinds[fs.Arg(1)]
			if !ok {
				return fmt.Errorf("unknown edge kind %q", fs.Arg(1))
			}
			filter = k
		}
		for _, e := range a.Edges() {
			if filter != 0 && e.Kind != filter {
				continue
			}
			switch e.Kind {
			case core.EdgeSync:
				fmt.Printf("%v -> %v [%v via %s]\n", e.From, e.To, e.Kind, e.Object)
			case core.EdgeData:
				fmt.Printf("%v -> %v [%v pages=%v]\n", e.From, e.To, e.Kind, e.Pages)
			default:
				fmt.Printf("%v -> %v [%v]\n", e.From, e.To, e.Kind)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func stats(g *core.Graph, a *core.Analysis) error {
	subs := g.Subs()
	threads := map[int]int{}
	var thunks, reads, writes int
	for _, sc := range subs {
		threads[sc.ID.Thread]++
		thunks += len(sc.Thunks)
		reads += sc.ReadSet.Len()
		writes += sc.WriteSet.Len()
	}
	var ctrl, syncE, data int
	for _, e := range a.Edges() {
		switch e.Kind {
		case core.EdgeControl:
			ctrl++
		case core.EdgeSync:
			syncE++
		case core.EdgeData:
			data++
		}
	}
	fmt.Printf("sub-computations: %d across %d threads\n", len(subs), len(threads))
	fmt.Printf("thunks:           %d\n", thunks)
	fmt.Printf("read-set pages:   %d   write-set pages: %d\n", reads, writes)
	fmt.Printf("edges:            %d control, %d sync, %d data\n", ctrl, syncE, data)
	return nil
}

// parseSubID parses "T<thread>.<alpha>".
func parseSubID(s string) (core.SubID, error) {
	if !strings.HasPrefix(s, "T") {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q (want T<thread>.<alpha>)", s)
	}
	parts := strings.SplitN(s[1:], ".", 2)
	if len(parts) != 2 {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q", s)
	}
	th, err := strconv.Atoi(parts[0])
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad thread in %q: %w", s, err)
	}
	alpha, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad alpha in %q: %w", s, err)
	}
	return core.SubID{Thread: th, Alpha: alpha}, nil
}
