// Command cpg-query runs provenance queries against a Concurrent
// Provenance Graph saved by inspector-run (gob format).
//
// Usage:
//
//	cpg-query -cpg run.gob stats
//	cpg-query -cpg run.gob verify
//	cpg-query -cpg run.gob [-format json] slice T1.3
//	cpg-query -cpg run.gob [-format json] taint T0.0
//	cpg-query -cpg run.gob lineage <page> T1.3
//	cpg-query -cpg run.gob [-format json] edges [control|sync|data]
//	cpg-query -cpg run.gob [-format json] path T0.0 T1.3
//
// path prints one dependency chain between two sub-computations — the
// "why does B depend on A" debugging query of the paper's §VIII case
// studies. -format json switches any subcommand's output to JSON for
// downstream tooling.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/repro/inspector/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cpg-query:", err)
		os.Exit(1)
	}
}

// edgeJSON is the -format json rendering of one edge.
type edgeJSON struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Kind   string   `json:"kind"`
	Object string   `json:"object,omitempty"`
	Pages  []uint64 `json:"pages,omitempty"`
}

func toEdgeJSON(e core.Edge) edgeJSON {
	return edgeJSON{
		From:   e.From.String(),
		To:     e.To.String(),
		Kind:   e.Kind.String(),
		Object: e.Object,
		Pages:  e.Pages,
	}
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// printEdges renders an edge list in the selected format.
func printEdges(w io.Writer, edges []core.Edge, asJSON bool) error {
	if asJSON {
		out := make([]edgeJSON, 0, len(edges))
		for _, e := range edges {
			out = append(out, toEdgeJSON(e))
		}
		return writeJSON(w, out)
	}
	for _, e := range edges {
		switch e.Kind {
		case core.EdgeSync:
			fmt.Fprintf(w, "%v -> %v [%v via %s]\n", e.From, e.To, e.Kind, e.Object)
		case core.EdgeData:
			fmt.Fprintf(w, "%v -> %v [%v pages=%v]\n", e.From, e.To, e.Kind, e.Pages)
		default:
			fmt.Fprintf(w, "%v -> %v [%v]\n", e.From, e.To, e.Kind)
		}
	}
	return nil
}

// printIDs renders a sub-computation list in the selected format.
func printIDs(w io.Writer, ids []core.SubID, asJSON bool) error {
	if asJSON {
		out := make([]string, 0, len(ids))
		for _, id := range ids {
			out = append(out, id.String())
		}
		return writeJSON(w, out)
	}
	for _, id := range ids {
		fmt.Fprintln(w, id)
	}
	return nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("cpg-query", flag.ContinueOnError)
	cpgPath := fs.String("cpg", "", "CPG gob file written by inspector-run -cpg")
	format := fs.String("format", "text", "output format: text|json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpgPath == "" || fs.NArg() < 1 {
		return errors.New("usage: cpg-query -cpg file.gob [-format json] <stats|verify|slice|taint|lineage|edges|path> [args]")
	}
	asJSON := false
	switch *format {
	case "text":
	case "json":
		asJSON = true
	default:
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	f, err := os.Open(*cpgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := core.DecodeGob(f)
	if err != nil {
		return err
	}
	a := g.Analyze()

	switch cmd := fs.Arg(0); cmd {
	case "stats":
		return stats(w, g, a, asJSON)
	case "verify":
		if err := a.Verify(); err != nil {
			return err
		}
		if asJSON {
			return writeJSON(w, map[string]bool{"valid": true})
		}
		fmt.Fprintln(w, "CPG is a valid happens-before DAG")
		return nil
	case "slice":
		id, err := parseSubID(fs.Arg(1))
		if err != nil {
			return err
		}
		return printIDs(w, a.Slice(id), asJSON)
	case "taint":
		id, err := parseSubID(fs.Arg(1))
		if err != nil {
			return err
		}
		return printIDs(w, a.TaintedBy(id), asJSON)
	case "lineage":
		if fs.NArg() < 3 {
			return errors.New("usage: cpg-query lineage <page> <subID>")
		}
		page, err := strconv.ParseUint(fs.Arg(1), 10, 64)
		if err != nil {
			return fmt.Errorf("bad page %q: %w", fs.Arg(1), err)
		}
		id, err := parseSubID(fs.Arg(2))
		if err != nil {
			return err
		}
		lins := a.PageLineage(page, id)
		if asJSON {
			type lineageJSON struct {
				Page     uint64   `json:"page"`
				Reader   string   `json:"reader"`
				Writer   string   `json:"writer"`
				Upstream []string `json:"upstream,omitempty"`
			}
			out := make([]lineageJSON, 0, len(lins))
			for _, l := range lins {
				lj := lineageJSON{Page: l.Page, Reader: id.String(), Writer: l.Writer.String()}
				for _, u := range l.Upstream {
					lj.Upstream = append(lj.Upstream, u.String())
				}
				out = append(out, lj)
			}
			return writeJSON(w, out)
		}
		if len(lins) == 0 {
			fmt.Fprintln(w, "no recorded writer for that page at that vertex")
			return nil
		}
		for _, l := range lins {
			fmt.Fprintf(w, "page %d read by %v was written by %v", l.Page, id, l.Writer)
			if len(l.Upstream) > 0 {
				ups := make([]string, len(l.Upstream))
				for i, u := range l.Upstream {
					ups[i] = u.String()
				}
				fmt.Fprintf(w, " (upstream sources: %s)", strings.Join(ups, ", "))
			}
			fmt.Fprintln(w)
		}
		return nil
	case "edges":
		kinds := map[string]core.EdgeKind{
			"control": core.EdgeControl, "sync": core.EdgeSync, "data": core.EdgeData,
		}
		var filter core.EdgeKind
		if fs.NArg() > 1 {
			k, ok := kinds[fs.Arg(1)]
			if !ok {
				return fmt.Errorf("unknown edge kind %q", fs.Arg(1))
			}
			filter = k
		}
		var out []core.Edge
		for _, e := range a.Edges() {
			if filter != 0 && e.Kind != filter {
				continue
			}
			out = append(out, e)
		}
		return printEdges(w, out, asJSON)
	case "path":
		if fs.NArg() < 3 {
			return errors.New("usage: cpg-query path <fromID> <toID>")
		}
		from, err := parseSubID(fs.Arg(1))
		if err != nil {
			return err
		}
		to, err := parseSubID(fs.Arg(2))
		if err != nil {
			return err
		}
		chain := a.Path(from, to)
		if chain == nil {
			return fmt.Errorf("no dependency chain %v -> %v (%v does not depend on %v)", from, to, to, from)
		}
		return printEdges(w, chain, asJSON)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func stats(w io.Writer, g *core.Graph, a *core.Analysis, asJSON bool) error {
	subs := g.Subs()
	threads := map[int]int{}
	var thunks, reads, writes int
	for _, sc := range subs {
		threads[sc.ID.Thread]++
		thunks += len(sc.Thunks)
		reads += sc.ReadSet.Len()
		writes += sc.WriteSet.Len()
	}
	var ctrl, syncE, data int
	for _, e := range a.Edges() {
		switch e.Kind {
		case core.EdgeControl:
			ctrl++
		case core.EdgeSync:
			syncE++
		case core.EdgeData:
			data++
		}
	}
	if asJSON {
		return writeJSON(w, map[string]int{
			"sub_computations": len(subs),
			"threads":          len(threads),
			"thunks":           thunks,
			"read_set_pages":   reads,
			"write_set_pages":  writes,
			"control_edges":    ctrl,
			"sync_edges":       syncE,
			"data_edges":       data,
		})
	}
	fmt.Fprintf(w, "sub-computations: %d across %d threads\n", len(subs), len(threads))
	fmt.Fprintf(w, "thunks:           %d\n", thunks)
	fmt.Fprintf(w, "read-set pages:   %d   write-set pages: %d\n", reads, writes)
	fmt.Fprintf(w, "edges:            %d control, %d sync, %d data\n", ctrl, syncE, data)
	return nil
}

// parseSubID parses "T<thread>.<alpha>".
func parseSubID(s string) (core.SubID, error) {
	if !strings.HasPrefix(s, "T") {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q (want T<thread>.<alpha>)", s)
	}
	parts := strings.SplitN(s[1:], ".", 2)
	if len(parts) != 2 {
		return core.SubID{}, fmt.Errorf("bad sub-computation id %q", s)
	}
	th, err := strconv.Atoi(parts[0])
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad thread in %q: %w", s, err)
	}
	alpha, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return core.SubID{}, fmt.Errorf("bad alpha in %q: %w", s, err)
	}
	return core.SubID{Thread: th, Alpha: alpha}, nil
}
