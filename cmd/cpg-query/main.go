// Command cpg-query runs provenance queries against a Concurrent
// Provenance Graph saved by inspector-run (gob format or the columnar
// on-disk .cpg format, detected by magic), or against a running
// inspector-serve daemon.
//
// Usage:
//
//	cpg-query -cpg run.gob stats
//	cpg-query -cpg run.gob verify
//	cpg-query -cpg run.gob [-format json] slice T1.3
//	cpg-query -cpg run.gob [-format json] taint T0.0
//	cpg-query -cpg run.gob lineage <page> T1.3
//	cpg-query -cpg run.gob [-format json] edges [control|sync|data]
//	cpg-query -cpg run.gob [-format json] path T0.0 T1.3
//	cpg-query -cpg run.gob export run.cpg
//	cpg-query -remote http://localhost:7070 [-id run] slice T1.3
//	cpg-query -remote http://localhost:7070 [-id run] watch
//
// export converts a CPG to the columnar on-disk format that
// inspector-serve -cpgdir serves with bounded memory; the other
// subcommands accept either format transparently.
//
// watch follows a live or ingested CPG's epoch push: it long-polls
// GET /v1/cpgs/{id}/epochs, prints one line per epoch advance, and
// exits when the source closes (the run finished or the stream was
// sealed). Remote only — a local file has no epochs to push.
//
// path prints one dependency chain between two sub-computations — the
// "why does B depend on A" debugging query of the paper's §VIII case
// studies. -format json switches any subcommand's output to JSON for
// downstream tooling.
//
// Every subcommand is a thin rendering of one provenance.Query: with
// -cpg the query executes in process (local engine), with -remote it is
// sent to an inspector-serve daemon speaking the same provenance/v1
// wire format, and the two modes produce identical bytes. -id selects
// the graph when the daemon serves several (defaults to the only one).
//
// Exit codes: 0 success, 1 query error (unreadable graph, failed
// verification, no dependency chain, server error), 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/provenance"
)

// newFlagSet builds the command's flag set.
func newFlagSet() *flag.FlagSet {
	return flag.NewFlagSet("cpg-query", flag.ContinueOnError)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cpg-query:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks errors in how the command was invoked, as opposed to
// errors answering a well-formed query.
type usageError struct{ err error }

func (u *usageError) Error() string { return u.err.Error() }
func (u *usageError) Unwrap() error { return u.err }

// usagef builds a usageError.
func usagef(format string, args ...any) error {
	return &usageError{err: fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit status: 2 for usage
// errors, 1 for query errors, 0 for success.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var u *usageError
	if errors.As(err, &u) {
		return 2
	}
	return 1
}

// writeJSON renders v the way every JSON subcommand always has.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// edgeJSON is the -format json rendering of one edge.
type edgeJSON struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Kind   string   `json:"kind"`
	Object string   `json:"object,omitempty"`
	Pages  []uint64 `json:"pages,omitempty"`
}

// printEdges renders an edge list in the selected format.
func printEdges(w io.Writer, edges []provenance.Edge, asJSON bool) error {
	if asJSON {
		out := make([]edgeJSON, 0, len(edges))
		for _, e := range edges {
			out = append(out, edgeJSON{From: e.From, To: e.To, Kind: e.Kind, Object: e.Object, Pages: e.Pages})
		}
		return writeJSON(w, out)
	}
	for _, e := range edges {
		switch e.Kind {
		case "sync":
			fmt.Fprintf(w, "%v -> %v [%v via %s]\n", e.From, e.To, e.Kind, e.Object)
		case "data":
			fmt.Fprintf(w, "%v -> %v [%v pages=%v]\n", e.From, e.To, e.Kind, e.Pages)
		default:
			fmt.Fprintf(w, "%v -> %v [%v]\n", e.From, e.To, e.Kind)
		}
	}
	return nil
}

// printIDs renders a sub-computation list in the selected format.
func printIDs(w io.Writer, ids []string, asJSON bool) error {
	if asJSON {
		out := make([]string, 0, len(ids))
		out = append(out, ids...)
		return writeJSON(w, out)
	}
	for _, id := range ids {
		fmt.Fprintln(w, id)
	}
	return nil
}

func run(args []string, w io.Writer) error {
	fs := newFlagSet()
	cpgPath := fs.String("cpg", "", "CPG gob file written by inspector-run -cpg")
	format := fs.String("format", "text", "output format: text|json")
	remote := fs.String("remote", "", "inspector-serve base URL (query remotely instead of -cpg)")
	cpgID := fs.String("id", "", "served CPG id for -remote (defaults to the only one)")
	if err := fs.Parse(args); err != nil {
		return &usageError{err: err}
	}
	if (*cpgPath == "" && *remote == "") || fs.NArg() < 1 {
		return usagef("usage: cpg-query {-cpg file.{gob|cpg} | -remote url [-id cpg]} [-format json] <stats|verify|slice|taint|lineage|edges|path|export> [args]")
	}
	asJSON := false
	switch *format {
	case "text":
	case "json":
		asJSON = true
	default:
		return usagef("unknown format %q (want text or json)", *format)
	}

	if fs.Arg(0) == "watch" {
		if *remote == "" {
			return usagef("watch follows a live server; use -remote, not -cpg")
		}
		if fs.NArg() != 1 {
			return usagef("usage: cpg-query -remote url [-id cpg] watch")
		}
		return runWatch(context.Background(), *remote, *cpgID, w, asJSON)
	}
	if fs.Arg(0) == "export" {
		if *remote != "" {
			return usagef("export converts a local file; use -cpg, not -remote")
		}
		if fs.NArg() != 2 {
			return usagef("usage: cpg-query -cpg in.gob export <out.cpg>")
		}
		return runExport(*cpgPath, fs.Arg(1), w)
	}

	q, err := buildQuery(fs.Arg(0), fs.Args()[1:])
	if err != nil {
		return err
	}

	ctx := context.Background()
	var res *provenance.Result
	if *remote != "" {
		res, err = runRemote(ctx, *remote, *cpgID, q)
	} else {
		res, err = runLocal(ctx, *cpgPath, q)
	}
	if err != nil {
		return err
	}
	return render(w, q, res, asJSON)
}

// buildQuery translates one subcommand invocation into a provenance
// Query, validating arguments up front so malformed invocations fail as
// usage errors in both local and remote mode.
func buildQuery(cmd string, args []string) (provenance.Query, error) {
	switch cmd {
	case "stats":
		return provenance.Query{Kind: provenance.KindStats}, nil
	case "verify":
		return provenance.Query{Kind: provenance.KindVerify}, nil
	case "slice", "taint":
		if len(args) < 1 {
			return provenance.Query{}, usagef("usage: cpg-query %s <subID>", cmd)
		}
		if _, err := parseSubID(args[0]); err != nil {
			return provenance.Query{}, &usageError{err: err}
		}
		kind := provenance.KindSlice
		if cmd == "taint" {
			kind = provenance.KindTaint
		}
		return provenance.Query{Kind: kind, Target: args[0]}, nil
	case "lineage":
		if len(args) < 2 {
			return provenance.Query{}, usagef("usage: cpg-query lineage <page> <subID>")
		}
		page, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			return provenance.Query{}, usagef("bad page %q: %v", args[0], err)
		}
		if _, err := parseSubID(args[1]); err != nil {
			return provenance.Query{}, &usageError{err: err}
		}
		return provenance.Query{Kind: provenance.KindLineage, Page: &page, Target: args[1]}, nil
	case "edges":
		q := provenance.Query{Kind: provenance.KindEdges}
		if len(args) > 0 {
			if _, err := provenance.ParseEdgeKind(args[0]); err != nil {
				return provenance.Query{}, usagef("unknown edge kind %q", args[0])
			}
			q.EdgeKinds = []string{args[0]}
		}
		return q, nil
	case "path":
		if len(args) < 2 {
			return provenance.Query{}, usagef("usage: cpg-query path <fromID> <toID>")
		}
		for _, arg := range args[:2] {
			if _, err := parseSubID(arg); err != nil {
				return provenance.Query{}, &usageError{err: err}
			}
		}
		return provenance.Query{Kind: provenance.KindPath, From: args[0], To: args[1]}, nil
	default:
		return provenance.Query{}, usagef("unknown command %q", cmd)
	}
}

// runLocal executes the query in process over a local CPG file of
// either format.
func runLocal(ctx context.Context, cpgPath string, q provenance.Query) (*provenance.Result, error) {
	a, err := loadLocalAnalysis(cpgPath)
	if err != nil {
		return nil, err
	}
	eng := provenance.NewEngine(a, provenance.EngineOptions{})
	return eng.Execute(ctx, q)
}

// loadLocalAnalysis opens a local CPG of either format, sniffing the
// 8-byte magic: the columnar on-disk format decodes directly, anything
// else is treated as an inspector-run gob.
func loadLocalAnalysis(cpgPath string) (*core.Analysis, error) {
	f, err := os.Open(cpgPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(cpgfile.Magic))
	if n, _ := io.ReadFull(f, magic); n == len(magic) && string(magic) == cpgfile.Magic {
		a, _, err := cpgfile.Load(cpgPath)
		return a, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	g, err := core.DecodeGob(f)
	if err != nil {
		return nil, err
	}
	return g.Analyze(), nil
}

// runExport converts a local CPG (gob or columnar) to the columnar
// on-disk format — the archival step between inspector-run -cpg and
// inspector-serve -cpgdir.
func runExport(cpgPath, outPath string, w io.Writer) error {
	a, err := loadLocalAnalysis(cpgPath)
	if err != nil {
		return err
	}
	base := filepath.Base(cpgPath)
	meta := cpgfile.Meta{RunID: strings.TrimSuffix(base, filepath.Ext(base))}
	if err := cpgfile.Write(outPath, a, meta); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote CPG file: %s\n", outPath)
	return nil
}

// runRemote sends the query to an inspector-serve daemon, following the
// cursor chain so the rendered output covers the full result set even
// when the server caps page sizes.
func runRemote(ctx context.Context, baseURL, id string, q provenance.Query) (*provenance.Result, error) {
	// A few retries ride out a daemon that is draining or shedding load
	// (503 + Retry-After) without the caller scripting a retry loop.
	c := &provenance.Client{BaseURL: baseURL, MaxRetries: 3}
	id, err := resolveID(ctx, c, id)
	if err != nil {
		return nil, err
	}
	res, err := c.Query(ctx, id, q)
	if err != nil {
		return nil, err
	}
	for res.NextCursor != "" {
		q.Cursor = res.NextCursor
		next, err := c.Query(ctx, id, q)
		if err != nil {
			return nil, err
		}
		res.IDs = append(res.IDs, next.IDs...)
		res.Edges = append(res.Edges, next.Edges...)
		res.Lineages = append(res.Lineages, next.Lineages...)
		res.NextCursor = next.NextCursor
	}
	return res, nil
}

// resolveID picks the served CPG when the daemon hosts exactly one and
// the caller named none.
func resolveID(ctx context.Context, c *provenance.Client, id string) (string, error) {
	if id != "" {
		return id, nil
	}
	cpgs, err := c.List(ctx)
	if err != nil {
		return "", err
	}
	if len(cpgs) != 1 {
		ids := make([]string, len(cpgs))
		for i, info := range cpgs {
			ids[i] = info.ID
		}
		return "", fmt.Errorf("server hosts %d CPGs %v; pick one with -id", len(cpgs), ids)
	}
	return cpgs[0].ID, nil
}

// runWatch follows one CPG's epoch push until the source closes: one
// line per advance, so a shell pipeline can react to new epochs as the
// remote run records them.
func runWatch(ctx context.Context, baseURL, id string, w io.Writer, asJSON bool) error {
	c := &provenance.Client{BaseURL: baseURL, MaxRetries: 3}
	id, err := resolveID(ctx, c, id)
	if err != nil {
		return err
	}
	report := func(st *provenance.EpochStatus) error {
		if asJSON {
			return writeJSON(w, st)
		}
		if st.Closed {
			fmt.Fprintf(w, "closed (final epoch %d)\n", st.Epoch)
		} else {
			fmt.Fprintf(w, "epoch %d\n", st.Epoch)
		}
		return nil
	}
	st, err := c.WaitEpoch(ctx, id, 0, 0)
	if err != nil {
		return err
	}
	if err := report(st); err != nil {
		return err
	}
	for !st.Closed {
		// 25s keeps each poll under the server's 30s watch cap, so a
		// quiet source answers with its current epoch instead of a
		// proxy-killed connection.
		next, err := c.WaitEpoch(ctx, id, st.Epoch+1, 25*time.Second)
		if err != nil {
			return err
		}
		if next.Epoch > st.Epoch || next.Closed {
			if err := report(next); err != nil {
				return err
			}
		}
		st = next
	}
	return nil
}

// render writes one result in the exact shapes the subcommands have
// always printed.
func render(w io.Writer, q provenance.Query, res *provenance.Result, asJSON bool) error {
	switch res.Kind {
	case provenance.KindStats:
		st := res.Stats
		if st == nil {
			return errors.New("malformed stats result")
		}
		if asJSON {
			doc := map[string]any{
				"sub_computations": st.SubComputations,
				"threads":          st.Threads,
				"thunks":           st.Thunks,
				"read_set_pages":   st.ReadSetPages,
				"write_set_pages":  st.WriteSetPages,
				"control_edges":    st.ControlEdges,
				"sync_edges":       st.SyncEdges,
				"data_edges":       st.DataEdges,
			}
			// Live (epoch > 0) answers say which epoch they describe, and
			// degraded graphs carry their loss summary; post-mortem output
			// for complete recordings is byte-identical to what it always
			// was.
			if res.Epoch > 0 {
				doc["epoch"] = res.Epoch
			}
			if res.Degraded {
				doc["degraded"] = true
				doc["gap_threads"] = st.GapThreads
				doc["gap_intervals"] = st.GapIntervals
				doc["lost_trace_bytes"] = st.LostTraceBytes
			}
			return writeJSON(w, doc)
		}
		fmt.Fprintf(w, "sub-computations: %d across %d threads\n", st.SubComputations, st.Threads)
		fmt.Fprintf(w, "thunks:           %d\n", st.Thunks)
		fmt.Fprintf(w, "read-set pages:   %d   write-set pages: %d\n", st.ReadSetPages, st.WriteSetPages)
		fmt.Fprintf(w, "edges:            %d control, %d sync, %d data\n",
			st.ControlEdges, st.SyncEdges, st.DataEdges)
		if res.Epoch > 0 {
			fmt.Fprintf(w, "epoch:            %d (live analysis)\n", res.Epoch)
		}
		if res.Degraded {
			fmt.Fprintf(w, "trace gaps:       %d intervals on %d threads, %d bytes lost (degraded)\n",
				st.GapIntervals, st.GapThreads, st.LostTraceBytes)
		}
		return nil

	case provenance.KindVerify:
		if res.Valid == nil {
			return errors.New("malformed verify result")
		}
		if !*res.Valid {
			// Distinguish "the invariant is violated" from "its witnesses
			// fall inside a trace gap": the latter is a property of a
			// degraded recording, not a wrong graph, and exits 0.
			if res.Degraded && strings.Contains(res.Detail, "unverifiable") {
				if asJSON {
					return writeJSON(w, map[string]any{"valid": false, "unverifiable": true, "detail": res.Detail})
				}
				fmt.Fprintf(w, "CPG unverifiable across a trace gap: %s\n", res.Detail)
				return nil
			}
			return errors.New(res.Detail)
		}
		if asJSON {
			return writeJSON(w, map[string]bool{"valid": true})
		}
		fmt.Fprintln(w, "CPG is a valid happens-before DAG")
		return nil

	case provenance.KindSlice, provenance.KindTaint:
		return printIDs(w, res.IDs, asJSON)

	case provenance.KindEdges:
		return printEdges(w, res.Edges, asJSON)

	case provenance.KindPath:
		if len(res.Edges) == 0 {
			return fmt.Errorf("no dependency chain %v -> %v (%v does not depend on %v)",
				q.From, q.To, q.To, q.From)
		}
		return printEdges(w, res.Edges, asJSON)

	case provenance.KindLineage:
		if asJSON {
			type lineageJSON struct {
				Page     uint64   `json:"page"`
				Reader   string   `json:"reader"`
				Writer   string   `json:"writer"`
				Upstream []string `json:"upstream,omitempty"`
			}
			out := make([]lineageJSON, 0, len(res.Lineages))
			for _, l := range res.Lineages {
				out = append(out, lineageJSON{Page: l.Page, Reader: l.Reader, Writer: l.Writer, Upstream: l.Upstream})
			}
			return writeJSON(w, out)
		}
		if len(res.Lineages) == 0 {
			fmt.Fprintln(w, "no recorded writer for that page at that vertex")
			return nil
		}
		for _, l := range res.Lineages {
			fmt.Fprintf(w, "page %d read by %v was written by %v", l.Page, l.Reader, l.Writer)
			if len(l.Upstream) > 0 {
				fmt.Fprintf(w, " (upstream sources: %s)", strings.Join(l.Upstream, ", "))
			}
			fmt.Fprintln(w)
		}
		return nil

	default:
		return fmt.Errorf("unexpected result kind %q", res.Kind)
	}
}

// parseSubID parses "T<thread>.<alpha>".
func parseSubID(s string) (core.SubID, error) {
	return provenance.ParseSubID(s)
}
