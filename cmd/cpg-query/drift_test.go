package main

// CLI output drift test. The provenance-package rewrite of cpg-query (and
// any future one) must not move a single byte of the command's output:
// testdata/cli_drift.json pins the SHA-256 of every subcommand's text and
// JSON output over all twelve workloads, as produced by the pre-rewrite
// (per-subcommand ad-hoc) implementation.
//
// Runs are single-threaded, which makes every recorded artifact — and
// therefore every query answer — byte-reproducible (see DESIGN.md,
// "Deterministic vs. scheduler-dependent outputs"). Query targets are
// derived deterministically from each graph: the backward slice and path
// target is thread 0's last sub-computation, the taint source is T0.0,
// and the lineage probe is the first data edge of the canonical edge
// order.
//
// Regenerate after an intentional output change with:
//
//	go test ./cmd/cpg-query -run TestCLIOutputDriftAgainstSeed -update-cli-drift
import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
)

var updateCLIDrift = flag.Bool("update-cli-drift", false,
	"rewrite testdata/cli_drift.json from the current implementation")

const cliDriftPath = "testdata/cli_drift.json"

// cliDriftEntry pins one invocation. Args omit the leading "-cpg <file>"
// pair, which the test supplies from a temp dir.
type cliDriftEntry struct {
	App  string   `json:"app"`
	Args []string `json:"args"`
	SHA  string   `json:"sha256"`
}

type cliDriftFile struct {
	Note    string          `json:"note"`
	Size    string          `json:"size"`
	Threads int             `json:"threads"`
	Seed    int64           `json:"seed"`
	Entries []cliDriftEntry `json:"entries"`
}

// buildWorkloadCPG records app single-threaded and writes its gob export,
// returning the file path and the decoded graph for target derivation.
func buildWorkloadCPG(t *testing.T, dir, app string) (string, *core.Graph) {
	t.Helper()
	w, err := workloads.Get(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.Config{Size: workloads.Small, Threads: 1, Seed: 1}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(rt, cfg); err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	path := filepath.Join(dir, app+".gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Graph().EncodeGob(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rt.Graph()
}

// driftInvocations derives the deterministic invocation list for one
// recorded graph.
func driftInvocations(g *core.Graph) [][]string {
	invocations := [][]string{
		{"stats"},
		{"-format", "json", "stats"},
		{"verify"},
		{"-format", "json", "verify"},
		{"edges"},
		{"edges", "control"},
		{"edges", "sync"},
		{"edges", "data"},
		{"-format", "json", "edges", "data"},
		{"taint", "T0.0"},
		{"-format", "json", "taint", "T0.0"},
	}
	last := core.SubID{}
	for _, sc := range g.Subs() {
		if sc.ID.Thread == 0 && sc.ID.Alpha >= last.Alpha {
			last = sc.ID
		}
	}
	invocations = append(invocations,
		[]string{"slice", last.String()},
		[]string{"-format", "json", "slice", last.String()},
	)
	if last.Alpha > 0 {
		invocations = append(invocations,
			[]string{"path", "T0.0", last.String()},
			[]string{"-format", "json", "path", "T0.0", last.String()},
		)
	}
	for _, e := range g.Edges() {
		if e.Kind == core.EdgeData && len(e.Pages) > 0 {
			page := strconv.FormatUint(e.Pages[0], 10)
			invocations = append(invocations,
				[]string{"lineage", page, e.To.String()},
				[]string{"-format", "json", "lineage", page, e.To.String()},
			)
			break
		}
	}
	return invocations
}

func cliSHA(t *testing.T, cpgPath string, args []string) string {
	t.Helper()
	full := append([]string{"-cpg", cpgPath}, args...)
	var buf bytes.Buffer
	if err := run(full, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	h := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(h[:])
}

func TestCLIOutputDriftAgainstSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	dir := t.TempDir()

	if *updateCLIDrift {
		df := cliDriftFile{
			Note: "SHA-256 of cpg-query output per subcommand, single-thread runs, " +
				"as produced by the pre-provenance-package implementation; " +
				"see drift_test.go for the regeneration command",
			Size:    "small",
			Threads: 1,
			Seed:    1,
		}
		for _, app := range workloads.Names() {
			cpgPath, g := buildWorkloadCPG(t, dir, app)
			for _, args := range driftInvocations(g) {
				df.Entries = append(df.Entries, cliDriftEntry{
					App:  app,
					Args: args,
					SHA:  cliSHA(t, cpgPath, args),
				})
			}
		}
		data, err := json.MarshalIndent(df, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll(filepath.Dir(cliDriftPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cliDriftPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", cliDriftPath, len(df.Entries))
		return
	}

	data, err := os.ReadFile(cliDriftPath)
	if err != nil {
		t.Fatalf("missing pinned hashes (run with -update-cli-drift to create): %v", err)
	}
	var df cliDriftFile
	if err := json.Unmarshal(data, &df); err != nil {
		t.Fatal(err)
	}
	cpgPaths := map[string]string{}
	for _, want := range df.Entries {
		want := want
		name := fmt.Sprintf("%s/%s", want.App, strings.Join(want.Args, "_"))
		t.Run(name, func(t *testing.T) {
			cpgPath, ok := cpgPaths[want.App]
			if !ok {
				cpgPath, _ = buildWorkloadCPG(t, dir, want.App)
				cpgPaths[want.App] = cpgPath
			}
			if got := cliSHA(t, cpgPath, want.Args); got != want.SHA {
				t.Errorf("cpg-query %v output drifted: sha %s, want %s",
					want.Args, got, want.SHA)
			}
		})
	}
}
