package main

import (
	"testing"

	"github.com/repro/inspector/internal/core"
)

func TestParseSubID(t *testing.T) {
	tests := []struct {
		in      string
		want    core.SubID
		wantErr bool
	}{
		{"T0.0", core.SubID{Thread: 0, Alpha: 0}, false},
		{"T3.17", core.SubID{Thread: 3, Alpha: 17}, false},
		{"T12.9999", core.SubID{Thread: 12, Alpha: 9999}, false},
		{"3.17", core.SubID{}, true},
		{"T3", core.SubID{}, true},
		{"Tx.1", core.SubID{}, true},
		{"T1.x", core.SubID{}, true},
		{"", core.SubID{}, true},
	}
	for _, tt := range tests {
		got, err := parseSubID(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSubID(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseSubID(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRequiresArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-cpg", "/nonexistent/file.gob", "stats"}); err == nil {
		t.Error("missing file accepted")
	}
}
