package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/provenance"
)

func TestParseSubID(t *testing.T) {
	tests := []struct {
		in      string
		want    core.SubID
		wantErr bool
	}{
		{"T0.0", core.SubID{Thread: 0, Alpha: 0}, false},
		{"T3.17", core.SubID{Thread: 3, Alpha: 17}, false},
		{"T12.9999", core.SubID{Thread: 12, Alpha: 9999}, false},
		{"3.17", core.SubID{}, true},
		{"T3", core.SubID{}, true},
		{"Tx.1", core.SubID{}, true},
		{"T1.x", core.SubID{}, true},
		{"", core.SubID{}, true},
	}
	for _, tt := range tests {
		got, err := parseSubID(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSubID(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseSubID(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRequiresArgs(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-cpg", "/nonexistent/file.gob", "stats"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-cpg", "x", "-format", "yaml", "stats"}, io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestExitCodes pins the exit-code contract: 2 for usage errors, 1 for
// query errors, 0 for success.
func TestExitCodes(t *testing.T) {
	cpg := writeTestCPG(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"-cpg", cpg, "stats"}, 0},
		{"no args", nil, 2},
		{"missing subcommand", []string{"-cpg", cpg}, 2},
		{"unknown flag", []string{"-cpg", cpg, "-bogus", "stats"}, 2},
		{"unknown format", []string{"-cpg", cpg, "-format", "yaml", "stats"}, 2},
		{"unknown subcommand", []string{"-cpg", cpg, "frobnicate"}, 2},
		{"slice missing target", []string{"-cpg", cpg, "slice"}, 2},
		{"slice bad target", []string{"-cpg", cpg, "slice", "banana"}, 2},
		{"taint bad target", []string{"-cpg", cpg, "taint", "T0"}, 2},
		{"lineage missing args", []string{"-cpg", cpg, "lineage", "101"}, 2},
		{"lineage bad page", []string{"-cpg", cpg, "lineage", "xyz", "T0.1"}, 2},
		{"edges unknown kind", []string{"-cpg", cpg, "edges", "banana"}, 2},
		{"path missing to", []string{"-cpg", cpg, "path", "T0.0"}, 2},
		{"path bad endpoint", []string{"-cpg", cpg, "path", "nope", "T0.1"}, 2},
		{"missing file", []string{"-cpg", "/nonexistent/file.gob", "stats"}, 1},
		{"no dependency chain", []string{"-cpg", cpg, "path", "T0.1", "T0.0"}, 1},
		{"unreachable server", []string{"-remote", "http://127.0.0.1:1", "stats"}, 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args, io.Discard)
			if got := exitCode(err); got != tt.want {
				t.Errorf("run(%v) exit = %d (err %v), want %d", tt.args, got, err, tt.want)
			}
		})
	}
}

// TestRemoteMatchesLocal holds the acceptance bar: remote mode against
// an inspector-serve handler produces byte-identical output to local
// mode, for every subcommand, in both formats — including when the
// server paginates and the client has to follow cursors.
func TestRemoteMatchesLocal(t *testing.T) {
	cpgPath := writeTestCPG(t)
	f, err := os.Open(cpgPath)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.DecodeGob(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, maxResults := range []int{0, 1} {
		eng := provenance.NewEngine(g.Analyze(), provenance.EngineOptions{MaxResults: maxResults})
		ts := httptest.NewServer(provenance.NewServer(
			map[string]*provenance.Engine{"cpg": eng}, provenance.ServerOptions{}))
		defer ts.Close()

		invocations := [][]string{
			{"stats"},
			{"verify"},
			{"edges"},
			{"edges", "sync"},
			{"edges", "data"},
			{"slice", "T0.1"},
			{"taint", "T0.0"},
			{"lineage", "101", "T0.1"},
			{"path", "T0.0", "T0.1"},
		}
		for _, inv := range invocations {
			for _, format := range []string{"text", "json"} {
				local := append([]string{"-cpg", cpgPath, "-format", format}, inv...)
				remote := append([]string{"-remote", ts.URL, "-format", format}, inv...)
				var lw, rw bytes.Buffer
				if err := run(local, &lw); err != nil {
					t.Fatalf("local %v: %v", inv, err)
				}
				if err := run(remote, &rw); err != nil {
					t.Fatalf("remote %v (max-results %d): %v", inv, maxResults, err)
				}
				if !bytes.Equal(lw.Bytes(), rw.Bytes()) {
					t.Errorf("remote output differs for %v -format %s (max-results %d):\nlocal:\n%s\nremote:\n%s",
						inv, format, maxResults, lw.String(), rw.String())
				}
			}
		}
		// -id selects among several graphs; a wrong id is a query error.
		withID := []string{"-remote", ts.URL, "-id", "cpg", "stats"}
		var buf bytes.Buffer
		if err := run(withID, &buf); err != nil {
			t.Errorf("-id cpg: %v", err)
		}
		if err := run([]string{"-remote", ts.URL, "-id", "wrong", "stats"}, io.Discard); exitCode(err) != 1 {
			t.Errorf("wrong -id exit = %d (%v)", exitCode(err), err)
		}
	}
}

// writeTestCPG records the paper's Figure 1 execution (lock handoff
// T0.0 -> T1.0 -> T0.1 with data flow on pages 100/101) into a gob file.
func writeTestCPG(t *testing.T) string {
	t.Helper()
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	rel := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnRead(101)
	r0.OnWrite(100)
	r0.OnWrite(101)
	s0, err := r0.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	r1.Acquire(lock)
	r1.OnRead(100)
	r1.OnWrite(101)
	s1, err := r1.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1.Release(lock, s1)
	r0.Acquire(lock)
	r0.OnRead(101)
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cpg.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.EncodeGob(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// query runs one cpg-query invocation and returns its output.
func query(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestQueryCommands(t *testing.T) {
	cpg := writeTestCPG(t)

	if out := query(t, "-cpg", cpg, "verify"); !strings.Contains(out, "valid happens-before DAG") {
		t.Errorf("verify output: %q", out)
	}
	if out := query(t, "-cpg", cpg, "stats"); !strings.Contains(out, "sub-computations: 4 across 2 threads") {
		t.Errorf("stats output: %q", out)
	}
	if out := query(t, "-cpg", cpg, "slice", "T0.1"); !strings.Contains(out, "T1.0") {
		t.Errorf("slice output missing cross-thread ancestor: %q", out)
	}
	if out := query(t, "-cpg", cpg, "taint", "T0.0"); !strings.Contains(out, "T1.0") {
		t.Errorf("taint output: %q", out)
	}
	if out := query(t, "-cpg", cpg, "edges", "sync"); !strings.Contains(out, "via lock") {
		t.Errorf("sync edges output: %q", out)
	}
	if out := query(t, "-cpg", cpg, "lineage", "101", "T0.1"); !strings.Contains(out, "written by T1.0") {
		t.Errorf("lineage output: %q", out)
	}
}

func TestQueryPath(t *testing.T) {
	cpg := writeTestCPG(t)

	// T0.1 depends on T0.0; the chain must be continuous.
	out := query(t, "-cpg", cpg, "path", "T0.0", "T0.1")
	if !strings.Contains(out, "T0.0 -> T0.1") {
		t.Errorf("path output: %q", out)
	}

	// No chain exists backwards.
	var buf bytes.Buffer
	err := run([]string{"-cpg", cpg, "path", "T0.1", "T0.0"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no dependency chain") {
		t.Errorf("reverse path error = %v", err)
	}
}

func TestQueryJSONFormat(t *testing.T) {
	cpg := writeTestCPG(t)

	var ids []string
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "slice", "T0.1")), &ids); err != nil {
		t.Fatalf("slice json: %v", err)
	}
	if len(ids) != 2 || ids[0] != "T0.0" || ids[1] != "T1.0" {
		t.Errorf("slice json = %v", ids)
	}

	var edges []edgeJSON
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "edges", "data")), &edges); err != nil {
		t.Fatalf("edges json: %v", err)
	}
	if len(edges) == 0 {
		t.Fatal("no data edges in json output")
	}
	for _, e := range edges {
		if e.Kind != "data" || len(e.Pages) == 0 {
			t.Errorf("edge json = %+v", e)
		}
	}

	var chain []edgeJSON
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "path", "T0.0", "T1.0")), &chain); err != nil {
		t.Fatalf("path json: %v", err)
	}
	if len(chain) == 0 || chain[0].From != "T0.0" || chain[len(chain)-1].To != "T1.0" {
		t.Errorf("path json = %+v", chain)
	}

	var st map[string]int
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "stats")), &st); err != nil {
		t.Fatalf("stats json: %v", err)
	}
	if st["sub_computations"] != 4 || st["threads"] != 2 {
		t.Errorf("stats json = %v", st)
	}

	var ver map[string]bool
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "verify")), &ver); err != nil {
		t.Fatalf("verify json: %v", err)
	}
	if !ver["valid"] {
		t.Errorf("verify json = %v", ver)
	}

	var lins []map[string]any
	if err := json.Unmarshal([]byte(query(t, "-cpg", cpg, "-format", "json", "lineage", "101", "T0.1")), &lins); err != nil {
		t.Fatalf("lineage json: %v", err)
	}
	if len(lins) != 1 || lins[0]["writer"] != "T1.0" || lins[0]["reader"] != "T0.1" {
		t.Errorf("lineage json = %v", lins)
	}
}
