// Command inspector-recover replays a write-ahead journal written by
// inspector-run -journal (or inspector.Options.Journal) and rebuilds
// the Concurrent Provenance Graph up to the last durable epoch.
//
// A journal from a crashed run usually ends in a torn record: a frame
// cut short mid-write, a half-written length prefix, or a corrupted
// payload. Recovery stops at the first bad CRC or short read, replays
// everything before it, and marks the result degraded with a
// truncated-tail gap — the recovered CPG says truthfully "complete up
// to epoch N, cut off after". A journal closed by a clean run carries a
// seal record and recovers complete.
//
// Usage:
//
//	inspector-recover -journal DIR [-epoch N] [-truncate]
//	                  [-cpg out.gob] [-cpgfile out.cpg] [-json out.json]
//	                  [-dot out.dot] [-analysis out.json] [-q]
//
// -epoch stops the replay at epoch N (a time-travel debugging aid; the
// result is not marked degraded — the cut was asked for). -truncate
// physically removes the torn tail so later tools read the journal
// cleanly. Exit status is 0 even when a tear was found — a recovered
// prefix is a success; only an unusable journal (no readable header,
// no directory) fails.
//
// -stream URL re-feeds the recovered epochs to a provenance aggregator
// (inspector-serve -ingest) under the journal's own run identity — the
// resume path after a streaming recorder died. The aggregator's dedup
// skips epochs it already holds, so replaying from epoch 1 is always
// safe; if the journal was sealed the stream is sealed too.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/repro/inspector/internal/atomicio"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/internal/wire"
	"github.com/repro/inspector/provenance"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "inspector-recover:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspector-recover", flag.ContinueOnError)
	dir := fs.String("journal", "", "journal directory to recover (required)")
	epoch := fs.Uint64("epoch", 0, "stop the replay at this epoch (0 = replay everything durable)")
	truncate := fs.Bool("truncate", false, "physically remove the torn tail after recovery")
	cpgOut := fs.String("cpg", "", "write the recovered CPG (gob) to this file")
	cpgfileOut := fs.String("cpgfile", "", "write the recovered CPG in the columnar on-disk format to this file")
	jsonOut := fs.String("json", "", "write the recovered CPG (JSON) to this file")
	dotOut := fs.String("dot", "", "write the recovered CPG (Graphviz DOT) to this file")
	analysisOut := fs.String("analysis", "", "write the recovered analysis (JSON: thread lens + edges) to this file")
	quiet := fs.Bool("q", false, "suppress the recovery summary")
	sumJSON := fs.Bool("summary-json", false, "print the recovery summary as one JSON object instead of human lines")
	streamURL := fs.String("stream", "", "re-feed the recovered epochs to a provenance aggregator (inspector-serve -ingest) at this base URL")
	streamID := fs.String("stream-id", "", "aggregator source name for -stream (default: the journal's run id)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("missing -journal DIR")
	}

	rep, err := journal.Recover(*dir, journal.RecoverOptions{
		MaxEpoch:   *epoch,
		Truncate:   *truncate,
		KeepDeltas: *streamURL != "",
	})
	if err != nil {
		return err
	}

	if *sumJSON {
		s := summaryJSON{
			RunID:    rep.Header.RunID,
			App:      rep.Header.App,
			Threads:  rep.Header.Threads,
			Epoch:    rep.Epoch,
			Records:  rep.Records,
			Sealed:   rep.Sealed,
			Degraded: rep.Degraded(),
		}
		if rep.Torn != nil {
			s.Torn = rep.Torn.String()
		}
		enc := json.NewEncoder(out)
		if err := enc.Encode(s); err != nil {
			return err
		}
		*quiet = true
	}
	if !*quiet {
		fmt.Fprintf(out, "run:              %s (%s, %d threads)\n",
			rep.Header.RunID, appOrUnknown(rep.Header.App), rep.Header.Threads)
		fmt.Fprintf(out, "recovered:        %d epochs from %d segments\n", rep.Epoch, len(rep.Segments))
		switch {
		case rep.Sealed:
			fmt.Fprintln(out, "journal:          sealed (clean close)")
		case rep.Stopped:
			fmt.Fprintf(out, "journal:          stopped at -epoch %d by request\n", rep.Epoch)
		case rep.Torn != nil:
			fmt.Fprintf(out, "journal:          torn tail at %s\n", rep.Torn)
			if *truncate {
				fmt.Fprintln(out, "journal:          torn tail truncated")
			}
		default:
			fmt.Fprintln(out, "journal:          unsealed (run did not close cleanly)")
		}
		comp := rep.Analysis.Completeness()
		if comp.Complete {
			fmt.Fprintln(out, "completeness:     complete")
		} else {
			fmt.Fprintf(out, "completeness:     degraded (%d gap intervals on %d threads)\n",
				comp.GapIntervals, comp.GapThreads)
		}
	}

	if *cpgOut != "" {
		if err := write(out, *cpgOut, "CPG", *quiet, rep.Graph.EncodeGob); err != nil {
			return err
		}
	}
	if *cpgfileOut != "" {
		meta := cpgfile.Meta{RunID: rep.Header.RunID, App: rep.Header.App}
		enc := func(w io.Writer) error { return cpgfile.Encode(w, rep.Analysis, meta) }
		if err := write(out, *cpgfileOut, "CPG file", *quiet, enc); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		if err := write(out, *jsonOut, "JSON", *quiet, rep.Graph.EncodeJSON); err != nil {
			return err
		}
	}
	if *dotOut != "" {
		if err := write(out, *dotOut, "DOT", *quiet, rep.Graph.WriteDOT); err != nil {
			return err
		}
	}
	if *analysisOut != "" {
		if err := write(out, *analysisOut, "analysis", *quiet, rep.Analysis.ExportJSON); err != nil {
			return err
		}
	}
	if *streamURL != "" {
		st, err := restream(rep, *streamURL, *streamID)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		if !*quiet {
			fmt.Fprintf(out, "stream:           aggregator at epoch %d (%d replayed, %d already held, sealed=%v)\n",
				st.NextEpoch-1, st.Accepted, st.Duplicates, st.Sealed)
		}
	}
	return nil
}

// restream re-feeds the recovered delta sequence under the journal's
// run identity. Replaying from epoch 1 is deliberate: the aggregator's
// dedup acknowledges everything it already applied, so the upload is
// correct whether the earlier stream died at epoch 0 or one short of
// the end.
func restream(rep *journal.Recovery, url, source string) (*provenance.IngestStatus, error) {
	if source == "" {
		source = rep.Header.RunID
	}
	c := &provenance.Client{BaseURL: url, MaxRetries: 8}
	hello := wire.Hello{RunID: rep.Header.RunID, App: rep.Header.App, Threads: rep.Header.Threads}
	var seal *wire.Seal
	if rep.Sealed && !rep.Stopped {
		seal = &wire.Seal{FinalEpoch: rep.Epoch}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	return provenance.UploadDeltas(ctx, c, source, hello, rep.Deltas, 64, seal)
}

func appOrUnknown(app string) string {
	if app == "" {
		return "unnamed app"
	}
	return app
}

// write exports one artifact crash-atomically — recovery must never
// replace a good artifact with a torn one, least of all while cleaning
// up after a crash.
func write(out io.Writer, path, what string, quiet bool, enc func(io.Writer) error) error {
	if err := atomicio.WriteFile(path, enc); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(out, "wrote %-12s %s\n", what+":", path)
	}
	return nil
}

// summaryJSON is the -summary-json shape scripts parse instead of the
// human lines.
type summaryJSON struct {
	RunID    string `json:"run_id"`
	App      string `json:"app,omitempty"`
	Threads  int    `json:"threads"`
	Epoch    uint64 `json:"epoch"`
	Records  int    `json:"records"`
	Sealed   bool   `json:"sealed"`
	Degraded bool   `json:"degraded"`
	Torn     string `json:"torn,omitempty"`
}
