package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/journal"
)

// record journals a small deterministic single-thread recording,
// capturing the per-epoch in-process analysis exports, and leaves the
// journal sealed (sealed=true) or abandoned mid-run (sealed=false).
func record(t *testing.T, dir string, steps int, sealed bool) [][]byte {
	t.Helper()
	w, err := journal.Create(journal.Options{Dir: dir, Threads: 2, App: "recover-test"})
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph(2)
	var recs []*core.Recorder
	for i := 0; i < 2; i++ {
		rec, err := core.NewRecorder(g, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	lock := g.NewSyncObject("m", false)
	jr := journal.NewRecorder(g, w, 1)
	var exports [][]byte
	jr.OnEpoch = func(a *core.Analysis, _ *core.EpochDelta) {
		var buf bytes.Buffer
		if err := a.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		exports = append(exports, buf.Bytes())
	}
	hook := jr.CommitHook()
	r := rand.New(rand.NewSource(42))
	for s := 0; s < steps; s++ {
		rec := recs[r.Intn(len(recs))]
		rec.OnRead(uint64(r.Intn(16)))
		rec.OnWrite(uint64(r.Intn(16)))
		sc, err := rec.EndSub(core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec.Release(lock, sc)
		rec.Acquire(lock)
		hook(core.SubID{})
	}
	if sealed {
		for _, rec := range recs {
			if _, err := rec.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
				t.Fatal(err)
			}
			hook(core.SubID{})
		}
		if err := jr.Close(); err != nil {
			t.Fatal(err)
		}
	} else if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return exports
}

func TestRecoverExportsMatchInProcessFold(t *testing.T) {
	jdir := t.TempDir()
	exports := record(t, jdir, 12, true)
	outDir := t.TempDir()
	analysis := filepath.Join(outDir, "a.json")
	cpg := filepath.Join(outDir, "g.gob")
	dot := filepath.Join(outDir, "g.dot")
	jsn := filepath.Join(outDir, "g.json")

	var out bytes.Buffer
	err := run([]string{
		"-journal", jdir, "-analysis", analysis, "-cpg", cpg, "-dot", dot, "-json", jsn,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sealed (clean close)") {
		t.Errorf("summary missing seal line:\n%s", out.String())
	}
	got, err := os.ReadFile(analysis)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, exports[len(exports)-1]) {
		t.Fatal("-analysis export diverges from the final in-process fold")
	}
	for _, p := range []string{cpg, dot, jsn} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s: %v", p, err)
		}
	}
}

func TestRecoverEpochPrefixMatchesEveryFold(t *testing.T) {
	jdir := t.TempDir()
	exports := record(t, jdir, 10, true)
	outDir := t.TempDir()
	for e := 1; e <= len(exports); e++ {
		analysis := filepath.Join(outDir, "a.json")
		var out bytes.Buffer
		err := run([]string{
			"-journal", jdir, "-epoch", strconv.Itoa(e), "-q", "-analysis", analysis,
		}, &out)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		got, err := os.ReadFile(analysis)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exports[e-1]) {
			t.Fatalf("epoch %d export diverges from the in-process fold", e)
		}
	}
}

func TestRecoverTornJournalSummaryJSON(t *testing.T) {
	jdir := t.TempDir()
	record(t, jdir, 10, false)
	// Tear the tail.
	segs, err := filepath.Glob(filepath.Join(jdir, "journal-*.isj"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-journal", jdir, "-summary-json"}, &out); err != nil {
		t.Fatalf("torn journal must still recover: %v", err)
	}
	var s summaryJSON
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out.String())
	}
	if s.Sealed || !s.Degraded || s.Torn == "" {
		t.Fatalf("summary = %+v, want unsealed+degraded+torn", s)
	}
	if s.Epoch == 0 || s.App != "recover-test" {
		t.Fatalf("summary = %+v", s)
	}
}

func TestRecoverErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -journal accepted")
	}
	if err := run([]string{"-journal", t.TempDir()}, &out); err == nil {
		t.Error("empty journal dir accepted")
	}
}
