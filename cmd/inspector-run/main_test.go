package main

import (
	"bytes"

	"os"
	"path/filepath"
	"testing"

	"github.com/repro/inspector/internal/journal"
)

func TestRunEndToEndWithArtifacts(t *testing.T) {
	dir := t.TempDir()
	cpg := filepath.Join(dir, "run.gob")
	dot := filepath.Join(dir, "run.dot")
	jsn := filepath.Join(dir, "run.json")
	perfdata := filepath.Join(dir, "run.perfdata")

	err := run([]string{
		"-app", "histogram", "-threads", "2", "-size", "small", "-decode",
		"-cpg", cpg, "-dot", dot, "-json", jsn, "-perfdata", perfdata,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpg, dot, jsn, perfdata} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("artifact %s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
}

func TestRunLiveStats(t *testing.T) {
	if err := run([]string{"-app", "histogram", "-threads", "2", "-size", "small", "-live-stats", "-verify"}); err != nil {
		t.Fatal(err)
	}
	// -live-stats is meaningless without tracking, but must not break
	// the native baseline.
	if err := run([]string{"-app", "histogram", "-threads", "2", "-size", "small", "-native", "-live-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNative(t *testing.T) {
	if err := run([]string{"-app", "histogram", "-threads", "2", "-size", "small", "-native"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -app accepted")
	}
	if err := run([]string{"-app", "nope"}); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"-app", "histogram", "-size", "giant"}); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRunJournal(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	jsn := filepath.Join(dir, "run.json")
	err := run([]string{
		"-app", "histogram", "-threads", "2", "-size", "small",
		"-journal", jdir, "-journal-fsync", "none", "-json", jsn,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Recover(jdir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.Sealed || rep.Degraded() {
		t.Fatalf("clean run journal: sealed=%v degraded=%v", rep.Sealed, rep.Degraded())
	}
	if rep.Header.App != "histogram" {
		t.Errorf("journal app = %q", rep.Header.App)
	}
	var buf bytes.Buffer
	if err := rep.Graph.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(jsn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("journal-recovered CPG diverges from the run's -json export")
	}
}

func TestRunJournalRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-app", "histogram", "-native", "-journal", t.TempDir()}); err == nil {
		t.Error("-journal with -native accepted")
	}
	if err := run([]string{"-app", "histogram", "-journal", t.TempDir(), "-journal-fsync", "sometimes"}); err == nil {
		t.Error("bad -journal-fsync accepted")
	}
}
