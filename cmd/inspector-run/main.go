// Command inspector-run executes one of the twelve benchmark workloads
// under INSPECTOR (or natively) and reports the run: timing, work, fault
// and trace statistics, and optionally the recorded Concurrent Provenance
// Graph as a gob file, JSON, or Graphviz DOT.
//
// It is the equivalent of the paper's LD_PRELOAD deployment: the same
// program runs unmodified in either mode, and in INSPECTOR mode the CPG
// and the per-process PT traces fall out as artifacts.
//
// Usage:
//
//	inspector-run -app histogram [-native] [-threads 4] [-size medium]
//	              [-cpg out.gob] [-cpgfile out.cpg] [-dot out.dot]
//	              [-json out.json] [-decode] [-verify] [-live-stats]
//	              [-seed 1]
//
// -live-stats turns on the live analysis pipeline for the run: the CPG
// is folded into queryable epochs while the workload executes, progress
// lines ("live: epoch N ...") stream during execution, and the final
// line summarizes what the online analysis saw — the same machinery
// inspector-serve -live serves over HTTP.
//
// -faults executes the run under a deterministic fault-injection
// schedule (internal/faultinject): "aux-loss" truncates PT sink writes
// like an overrunning AUX ring, "panic" crashes the workload at a commit
// boundary, "slow-fold" delays live analysis folds from inside the fold
// workers (-fold-workers sets the fan-out). The run completes
// (artifacts are still exported), the report names the faults that
// fired, and the recorded CPG carries its trace gaps and completeness —
// the same schedule reproduces the same faults run after run. The
// "crash" point SIGKILLs the process outright at a commit boundary —
// nothing is exported; pair it with -journal and inspector-recover.
//
// -journal DIR makes the recording crash-durable: every sealed epoch is
// appended to a write-ahead journal, synchronously at the commit
// boundary, under the fsync policy of -journal-fsync. After a crash,
// inspector-recover replays the journal up to the last durable epoch.
//
// -stream URL attaches the run to a provenance aggregator
// (inspector-serve -ingest): sealed epochs fold into deltas on the
// commit path and upload asynchronously, so the aggregator serves the
// run's live CPG remotely while it executes. The run id is
// deterministic (app-tN-sSEED) and shared with -journal, so after a
// recorder crash `inspector-recover -stream URL` re-feeds the journal
// and the aggregator converges on the identical graph.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"syscall"
	"time"

	"github.com/repro/inspector/internal/atomicio"
	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/internal/faultinject"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "inspector-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("inspector-run", flag.ContinueOnError)
	app := fs.String("app", "", "workload to run (see -list)")
	list := fs.Bool("list", false, "list available workloads")
	native := fs.Bool("native", false, "run the pthreads baseline instead of INSPECTOR")
	threads := fs.Int("threads", 4, "worker thread count")
	sizeFlag := fs.String("size", "medium", "input size: small|medium|large")
	seed := fs.Int64("seed", 1, "input generation seed")
	cpgOut := fs.String("cpg", "", "write the CPG (gob) to this file")
	cpgfileOut := fs.String("cpgfile", "", "write the CPG in the columnar on-disk format (inspector-serve -cpgdir, cpg-query) to this file")
	dotOut := fs.String("dot", "", "write the CPG (Graphviz DOT) to this file")
	jsonOut := fs.String("json", "", "write the CPG (JSON) to this file")
	perfOut := fs.String("perfdata", "", "write the perf session (for pt-dump) to this file")
	imageOut := fs.String("imageout", "", "write the image sidecar (for pt-dump -events) to this file")
	decode := fs.Bool("decode", false, "decode all PT traces and report event counts")
	verify := fs.Bool("verify", false, "check the recorded CPG's structural invariants before exporting")
	liveStats := fs.Bool("live-stats", false, "fold the CPG incrementally during the run and stream per-epoch stats")
	foldWorkers := fs.Int("fold-workers", 0, "worker cap for live/journal fold derivation (0 = GOMAXPROCS, 1 = serial)")
	faults := fs.String("faults", "", `deterministic fault-injection schedule, e.g. "aux-loss:after=20,every=7;panic:count=1"`)
	journalDir := fs.String("journal", "", "write-ahead journal directory: every sealed epoch is appended crash-durably; recover with inspector-recover")
	journalFsync := fs.String("journal-fsync", "always", `journal fsync policy: always|interval[:N]|none`)
	journalEvery := fs.Int("journal-every", 1, "journal one epoch each N sealed sub-computations")
	streamURL := fs.String("stream", "", "stream sealed epochs to a provenance aggregator (inspector-serve -ingest) at this base URL")
	streamID := fs.String("stream-id", "", "aggregator source name (default: the run id, app-tN-sSEED)")
	streamEvery := fs.Int("stream-every", 1, "stream one epoch each N sealed sub-computations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return nil
	}
	if *app == "" {
		return fmt.Errorf("missing -app (use -list to see workloads)")
	}
	if *foldWorkers < 0 {
		return fmt.Errorf("-fold-workers %d is negative (0 means GOMAXPROCS)", *foldWorkers)
	}
	w, err := workloads.Get(*app)
	if err != nil {
		return err
	}
	var size workloads.Size
	switch *sizeFlag {
	case "small":
		size = workloads.Small
	case "medium":
		size = workloads.Medium
	case "large":
		size = workloads.Large
	default:
		return fmt.Errorf("unknown size %q", *sizeFlag)
	}
	mode := threading.ModeInspector
	if *native {
		mode = threading.ModeNative
	}
	cfg := workloads.Config{Size: size, Threads: *threads, Seed: *seed}
	topts := threading.Options{
		AppName:    *app,
		Mode:       mode,
		MaxThreads: w.MaxThreads(cfg),
	}
	var injector *faultinject.Injector
	if *faults != "" {
		if mode != threading.ModeInspector {
			return fmt.Errorf("-faults injects into the recording pipeline; it needs INSPECTOR mode (drop -native)")
		}
		sched, err := faultinject.Parse(*faults)
		if err != nil {
			return err
		}
		injector = faultinject.New(sched)
		topts.WrapTraceSink = injector.WrapSink
	}
	rt, err := threading.NewRuntime(topts)
	if err != nil {
		return err
	}
	// The run identity is deterministic so a SIGKILLed streaming run can
	// be resumed: the journal header and the aggregator's source binding
	// name the same run, and inspector-recover -stream re-feeds under it.
	runID := fmt.Sprintf("%s-t%d-s%d", *app, *threads, *seed)
	var jrec *journal.Recorder
	if *journalDir != "" {
		if mode != threading.ModeInspector {
			return fmt.Errorf("-journal records the provenance pipeline; it needs INSPECTOR mode (drop -native)")
		}
		policy, syncEvery, err := journal.ParsePolicy(*journalFsync)
		if err != nil {
			return err
		}
		jopts := journal.Options{
			Dir:       *journalDir,
			Threads:   rt.Graph().Threads(),
			App:       *app,
			Fsync:     policy,
			SyncEvery: syncEvery,
		}
		if *streamURL != "" {
			jopts.RunID = runID
		}
		w, err := journal.Create(jopts)
		if err != nil {
			return err
		}
		jrec = journal.NewRecorder(rt.Graph(), w, *journalEvery)
		jrec.SetFoldWorkers(*foldWorkers)
		// Registered before the fault hooks on purpose: commit hooks run
		// in registration order, so by the time an injected crash kills
		// the process, the epoch sealed by this very commit is already
		// on the journal — the kill-recover sweep's determinism anchor.
		rt.RegisterCommitHook(jrec.CommitHook())
	}
	var srec *provenance.StreamRecorder
	streamSource := *streamID
	if *streamURL != "" {
		if mode != threading.ModeInspector {
			return fmt.Errorf("-stream uploads the provenance pipeline; it needs INSPECTOR mode (drop -native)")
		}
		if streamSource == "" {
			streamSource = runID
		}
		var err error
		srec, err = provenance.NewStreamRecorder(rt.Graph(), &provenance.Client{
			BaseURL:    *streamURL,
			MaxRetries: 8,
		}, provenance.StreamOptions{
			Source: streamSource,
			RunID:  runID,
			App:    *app,
			Every:  uint64(*streamEvery),
		})
		if err != nil {
			return err
		}
		// Like the journal hook: registered before the fault hooks so the
		// epoch sealed by a crashing commit is already folded and queued.
		// The upload itself is asynchronous — the journal, not the wire,
		// is the durability anchor.
		rt.RegisterCommitHook(srec.CommitHook())
	}
	if injector != nil {
		rt.RegisterCommitHook(func(id core.SubID) {
			if injector.Fire(faultinject.Crash) {
				// A real crash, not a panic: no deferred handlers, no
				// exports, no journal seal. Only what the journal
				// already holds survives.
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
				select {} // unreachable: wait for the signal
			}
			if injector.Fire(faultinject.WorkloadPanic) {
				panic(fmt.Sprintf("injected workload panic after %v", id))
			}
		})
	}
	var live *provenance.LiveEngine
	stopWatch := func() {}
	if *liveStats && mode == threading.ModeInspector {
		eopts := provenance.EngineOptions{FoldWorkers: *foldWorkers}
		if injector != nil {
			// The slow-fold point fires inside the fold's derivation
			// workers (one hit per worker per fold), so an injected delay
			// stalls the parallel path itself, not just the fold entry.
			eopts.FoldWorkerHook = func(int) {
				if injector.Fire(faultinject.SlowFold) {
					time.Sleep(time.Millisecond)
				}
			}
		}
		live = provenance.NewLiveEngine(rt.Graph(), eopts)
		rt.RegisterCommitHook(func(core.SubID) { live.Notify() })
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		watcherDone := make(chan struct{})
		stopWatch = func() { cancel(); <-watcherDone }
		go func() {
			defer close(watcherDone)
			watchEpochs(ctx, live)
		}()
	}
	// Under -faults an erroring run (an injected panic) still reports and
	// exports: the partial CPG with its gap marks is precisely the
	// artifact a degraded run exists to produce. The error surfaces at
	// the end, so the exit code still says the run did not complete.
	runErr := w.Run(rt, cfg)
	if runErr != nil {
		if injector == nil {
			return runErr
		}
		fmt.Printf("workload error:   %v (continuing under -faults)\n", runErr)
	}
	if live != nil {
		cerr := live.Close()
		// Stop the sampler before the summary so progress lines cannot
		// interleave with the report.
		stopWatch()
		if cerr != nil {
			return cerr
		}
		st, err := liveStatsSummary(live)
		if err != nil {
			return err
		}
		fmt.Printf("live analysis:    %d epochs folded; final epoch saw %d sub-computations, %d edges\n",
			live.Epoch(), st.SubComputations, st.ControlEdges+st.SyncEdges+st.DataEdges)
	}
	if jrec != nil {
		if err := jrec.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		fmt.Printf("journal:          %d epochs sealed in %s\n", jrec.Epoch(), *journalDir)
	}
	if srec != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		serr := srec.Close(ctx)
		cancel()
		switch {
		case serr == nil:
			fmt.Printf("stream:           %d epochs shipped to %s (source %s)\n",
				srec.Epoch(), *streamURL, streamSource)
		case jrec != nil:
			// The journal holds every epoch; the aggregator catches up via
			// inspector-recover -stream. A dead sink degrades the stream,
			// not the run.
			fmt.Printf("stream:           %v (journal %s holds every epoch; re-feed with inspector-recover -stream)\n",
				serr, *journalDir)
		default:
			return fmt.Errorf("stream: %w", serr)
		}
	}
	rep := rt.LastReport()

	fmt.Printf("app:              %s (%v, %d threads, %v input)\n", rep.App, rep.Mode, *threads, size)
	fmt.Printf("time:             %v (%.3f ms simulated)\n", rep.Time, rep.Time.Seconds()*1e3)
	fmt.Printf("work:             %v\n", rep.Work)
	fmt.Printf("instructions:     %d loads, %d stores, %d branches, %d alu\n",
		rep.Loads, rep.Stores, rep.Branches, rep.ALU)
	if mode == threading.ModeInspector {
		fmt.Printf("page faults:      %d (%d read, %d write; %.3g/sec)\n",
			rep.Faults(), rep.ReadFaults, rep.WriteFaults, rep.FaultsPerSec())
		fmt.Printf("commits:          %d pages, %d bytes published, %d twins\n",
			rep.CommittedPages, rep.CommittedBytes, rep.TwinCopies)
		fmt.Printf("pt trace:         %d bytes (%d lost), %.2f MB/s, %d TNT bits, %d TIPs, %d FUPs\n",
			rep.TraceBytes, rep.LostTraceBytes, rep.TraceBandwidthMBps(),
			rep.PT.TNTBits, rep.PT.TIPs, rep.PT.FUPs)
		fmt.Printf("processes:        %d spawned\n", rep.ProcessesSpawned)
		fmt.Printf("CPG:              %d sub-computations, %d sync edges\n",
			rep.SubComputations, len(rt.Graph().SyncEdges()))
		fmt.Printf("breakdown:        app=%v threading=%v pt=%v\n",
			rep.AppCycles, rep.ThreadingCycles, rep.PTCycles)
		if comp := rt.Graph().Completeness(); !comp.Complete {
			fmt.Printf("trace gaps:       %d intervals on %d threads, %d bytes lost (CPG marked degraded)\n",
				comp.GapIntervals, comp.GapThreads, comp.LostBytes)
		}
	}
	if injector != nil {
		if s := injector.Summary(); s != "" {
			fmt.Printf("faults fired:     %s\n", s)
		} else {
			fmt.Println("faults fired:     none (schedule never triggered)")
		}
	}

	if *verify && mode == threading.ModeInspector {
		switch err := rt.Graph().Analyze().Verify(); {
		case err == nil:
			fmt.Println("CPG verified:    happens-before DAG, edge pages contained in recorded sets")
		case errors.Is(err, core.ErrUnverifiable):
			// Not a violation: the invariant's witnesses fall inside a
			// trace gap, so the graph is degraded, not wrong.
			fmt.Printf("CPG unverifiable: %v\n", err)
		default:
			return fmt.Errorf("CPG verification failed: %w", err)
		}
	}

	if *decode && mode == threading.ModeInspector {
		counts, err := rt.DecodeTraces()
		if err != nil {
			return fmt.Errorf("decode traces: %w", err)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		fmt.Printf("decoded branches: %d events across %d traces\n", total, len(counts))
	}

	if *cpgOut != "" {
		if err := writeFile(*cpgOut, rt.Graph().EncodeGob); err != nil {
			return err
		}
		fmt.Printf("wrote CPG:        %s\n", *cpgOut)
	}
	if *cpgfileOut != "" {
		meta := cpgfile.Meta{
			RunID: fmt.Sprintf("%s-t%d-s%d", *app, *threads, *seed),
			App:   *app,
		}
		analysis := rt.Graph().Analyze()
		err := writeFile(*cpgfileOut, func(w io.Writer) error {
			return cpgfile.Encode(w, analysis, meta)
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote CPG file:   %s\n", *cpgfileOut)
	}
	if *dotOut != "" {
		if err := writeFile(*dotOut, rt.Graph().WriteDOT); err != nil {
			return err
		}
		fmt.Printf("wrote DOT:        %s\n", *dotOut)
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, rt.Graph().EncodeJSON); err != nil {
			return err
		}
		fmt.Printf("wrote JSON:       %s\n", *jsonOut)
	}
	if *perfOut != "" && mode == threading.ModeInspector {
		if err := writeFile(*perfOut, rt.Session().Serialize); err != nil {
			return err
		}
		fmt.Printf("wrote perf data:  %s\n", *perfOut)
	}
	if *imageOut != "" && mode == threading.ModeInspector {
		err := writeFile(*imageOut, func(w io.Writer) error {
			_, err := rt.Image().WriteTo(w)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote image:      %s\n", *imageOut)
	}
	return runErr
}

// watchEpochs streams live-analysis progress while the workload runs.
// It samples rather than subscribing per epoch: folds can seal hundreds
// of epochs per second, and one line per sample keeps the output
// readable for any workload size.
func watchEpochs(ctx context.Context, live *provenance.LiveEngine) {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	var last uint64
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		epoch := live.Epoch()
		if epoch == last {
			continue
		}
		last = epoch
		st, err := liveStatsSummary(live)
		if err != nil {
			continue
		}
		fmt.Printf("live: epoch %d: %d sub-computations, %d edges (queryable mid-run)\n",
			epoch, st.SubComputations, st.ControlEdges+st.SyncEdges+st.DataEdges)
	}
}

// liveStatsSummary runs a stats query against the newest epoch.
func liveStatsSummary(live *provenance.LiveEngine) (*provenance.Stats, error) {
	res, err := live.Engine().Execute(context.Background(), provenance.Query{Kind: provenance.KindStats})
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

// writeFile exports one artifact crash-atomically: a run killed or
// powered off mid-export leaves the previous file (or none), never a
// torn one.
func writeFile(path string, enc func(w io.Writer) error) error {
	return atomicio.WriteFile(path, enc)
}
