// Command inspector-serve is the provenance query daemon: it loads one
// or more Concurrent Provenance Graphs (gob files written by
// inspector-run -cpg, or a workload recorded on the spot with -workload)
// and serves the provenance/v1 HTTP API to any number of concurrent
// clients off a shared immutable analysis.
//
// Usage:
//
//	inspector-serve -cpg run.gob [-cpg other.gob] [-addr :7070]
//	inspector-serve -workload histogram [-threads 4] [-size small] [-seed 1]
//
//	GET  /v1/cpgs              list the served graphs
//	GET  /v1/cpgs/{id}/stats   summary of one graph
//	POST /v1/cpgs/{id}/query   run a provenance/v1 Query (JSON body)
//
// Each -cpg file is served under the id of its base name without the
// extension (run.gob -> "run"); -workload serves under the workload
// name. -timeout bounds each request's graph traversal (the deadline
// cancels the traversal inside the engine, not just the response), and
// -max-results caps any single result page — clients follow the
// next_cursor contract for the rest.
//
// cpg-query -remote http://host:port is the matching client:
//
//	cpg-query -remote http://localhost:7070 -id run slice T0.3
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "inspector-serve:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated -cpg flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("inspector-serve", flag.ContinueOnError)
	var cpgPaths multiFlag
	fs.Var(&cpgPaths, "cpg", "CPG gob file to serve (repeatable)")
	workload := fs.String("workload", "", "record this workload at startup and serve its CPG")
	threads := fs.Int("threads", 4, "worker thread count for -workload")
	sizeFlag := fs.String("size", "small", "input size for -workload: small|medium|large")
	seed := fs.Int64("seed", 1, "input generation seed for -workload")
	addr := fs.String("addr", ":7070", "listen address")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request query deadline (0 = none)")
	maxResults := fs.Int("max-results", 10000, "result page cap; clients page with cursors (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	srv, err := buildServer(cpgPaths, *workload, *threads, *sizeFlag, *seed,
		provenance.ServerOptions{Timeout: *timeout}, provenance.EngineOptions{MaxResults: *maxResults})
	if err != nil {
		return err
	}
	// Bind before announcing, so -addr :0 (tests, smoke scripts) prints
	// the actual port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("inspector-serve: serving %v on %s\n", srv.IDs(), ln.Addr())
	return http.Serve(ln, srv)
}

// buildServer assembles the engine set from gob files and/or a recorded
// workload. Everything behind it is immutable, so the returned handler
// is safe for arbitrary client concurrency.
func buildServer(cpgPaths []string, workload string, threads int, sizeFlag string, seed int64,
	sopts provenance.ServerOptions, eopts provenance.EngineOptions) (*provenance.Server, error) {
	engines := map[string]*provenance.Engine{}
	for _, path := range cpgPaths {
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := engines[id]; dup {
			return nil, fmt.Errorf("duplicate cpg id %q (from %s)", id, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		g, err := core.DecodeGob(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		engines[id] = provenance.NewEngine(g.Analyze(), eopts)
	}
	if workload != "" {
		g, err := recordWorkload(workload, threads, sizeFlag, seed)
		if err != nil {
			return nil, err
		}
		if _, dup := engines[workload]; dup {
			return nil, fmt.Errorf("duplicate cpg id %q (from -workload)", workload)
		}
		engines[workload] = provenance.NewEngine(g.Analyze(), eopts)
	}
	if len(engines) == 0 {
		return nil, fmt.Errorf("nothing to serve (need -cpg or -workload)")
	}
	return provenance.NewServer(engines, sopts), nil
}

// recordWorkload runs one workload under INSPECTOR and returns its CPG.
func recordWorkload(app string, threads int, sizeFlag string, seed int64) (*core.Graph, error) {
	w, err := workloads.Get(app)
	if err != nil {
		return nil, err
	}
	var size workloads.Size
	switch sizeFlag {
	case "small":
		size = workloads.Small
	case "medium":
		size = workloads.Medium
	case "large":
		size = workloads.Large
	default:
		return nil, fmt.Errorf("unknown size %q", sizeFlag)
	}
	cfg := workloads.Config{Size: size, Threads: threads, Seed: seed}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		return nil, err
	}
	if err := w.Run(rt, cfg); err != nil {
		return nil, fmt.Errorf("%s: %w", app, err)
	}
	return rt.Graph(), nil
}
