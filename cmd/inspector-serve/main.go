// Command inspector-serve is the provenance query daemon: it loads one
// or more Concurrent Provenance Graphs (gob files written by
// inspector-run -cpg, or a workload recorded on the spot with -workload)
// and serves the provenance/v1 HTTP API to any number of concurrent
// clients off a shared immutable analysis.
//
// Usage:
//
//	inspector-serve -cpg run.gob [-cpg other.gob] [-addr :7070]
//	inspector-serve -cpgdir cpgs/ [-resident-budget 67108864] [-result-cache 1024]
//	inspector-serve -workload histogram [-threads 4] [-size small] [-seed 1]
//	inspector-serve -workload histogram -live [-live-slowdown 10ms]
//
//	GET  /v1/cpgs              list the served graphs
//	GET  /v1/cpgs/{id}/stats   summary of one graph
//	POST /v1/cpgs/{id}/query   run a provenance/v1 Query (JSON body)
//
// Each -cpg file is served under the id of its base name without the
// extension (run.gob -> "run"); -workload serves under the workload
// name. -cpgdir serves every *.cpg file in a directory (the columnar
// format written by inspector-run -cpgfile or cpg-query export) without
// loading them up front: files are mmapped, listed from their stats
// sections, decoded only when queried, and evicted LRU once the decoded
// graphs exceed -resident-budget bytes — thousands of CPGs serve under
// a fixed memory ceiling. Repeated queries are answered from a
// content-addressed result cache (-result-cache entries); GET /v1/store
// reports hit/miss/eviction counters. -timeout bounds each request's
// graph traversal (the deadline
// cancels the traversal inside the engine, not just the response), and
// -max-results caps any single result page — clients follow the
// next_cursor contract for the rest.
//
// With -live the daemon does not wait for the workload: recording and
// serving start together, the CPG is folded into successive analysis
// epochs as sub-computations seal, and every response carries the epoch
// it was answered from (each request pins one epoch, so cursors stay
// valid within it). Once the workload finishes, the final epoch serves
// the complete graph — the daemon degrades gracefully into the
// post-mortem form. -live-slowdown stretches the recording by sleeping
// at every commit boundary, which keeps short demo workloads alive long
// enough to watch epochs advance.
//
// With -ingest the daemon is the fabric's aggregator: recorders running
// elsewhere (inspector-run -stream URL) POST their CRC-checksummed
// epoch-delta frames to /v1/ingest/{source}. Each source folds into its
// own live CPG served under the same query API; GET /v1/ingest/{source}
// reports the resume offset a reconnecting recorder continues from, and
// GET /v1/cpgs/{id}/epochs?min=N&wait=30s long-polls the epoch push
// (cpg-query watch consumes it). A source that sends a malformed delta
// is latched degraded: the forged epoch is refused atomically and the
// last good epoch keeps serving, gap-marked.
//
// The daemon is hardened for unattended operation: GET /healthz answers
// as soon as the listener is up, GET /readyz answers 503 until every CPG
// is loaded (and reports live epoch progress once ready), -max-inflight
// sheds excess concurrent queries with 503 + Retry-After, a panicking
// handler is answered with 500 instead of killing the process, and
// SIGTERM/SIGINT drain in-flight requests (bounded by -drain-timeout)
// before exiting 0. -lenient skips unreadable -cpg files instead of
// refusing to start.
//
// cpg-query -remote http://host:port is the matching client:
//
//	cpg-query -remote http://localhost:7070 -id run slice T0.3
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/internal/threading"
	"github.com/repro/inspector/internal/workloads"
	"github.com/repro/inspector/provenance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "inspector-serve:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated -cpg flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("inspector-serve", flag.ContinueOnError)
	var cpgPaths multiFlag
	fs.Var(&cpgPaths, "cpg", "CPG gob file to serve (repeatable)")
	var journalDirs multiFlag
	fs.Var(&journalDirs, "journal", "write-ahead journal directory to recover and serve (repeatable; id = directory basename)")
	cpgDir := fs.String("cpgdir", "", "directory of columnar .cpg files to serve lazily with bounded memory (id = file basename)")
	residentBudget := fs.Int64("resident-budget", 64<<20, "with -cpgdir: max estimated bytes of decoded graphs resident at once (0 = unlimited)")
	resultCache := fs.Int("result-cache", 0, "with -cpgdir: query result cache capacity in entries (0 = default 1024, negative = disabled)")
	workload := fs.String("workload", "", "record this workload at startup and serve its CPG")
	threads := fs.Int("threads", 4, "worker thread count for -workload")
	sizeFlag := fs.String("size", "small", "input size for -workload: small|medium|large")
	seed := fs.Int64("seed", 1, "input generation seed for -workload")
	addr := fs.String("addr", ":7070", "listen address")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request query deadline (0 = none)")
	maxResults := fs.Int("max-results", 10000, "result page cap; clients page with cursors (0 = unlimited)")
	live := fs.Bool("live", false, "with -workload: serve the CPG while it records (epoch-based incremental analysis)")
	foldWorkers := fs.Int("fold-workers", 0, "with -live: fan the fold's data-edge derivation across this many workers (0 = GOMAXPROCS, 1 = serial)")
	liveSlowdown := fs.Duration("live-slowdown", 0, "with -live: sleep this long at every commit boundary (stretches short workloads for demos/tests)")
	lenient := fs.Bool("lenient", false, "skip unreadable -cpg files (log and serve the rest) instead of refusing to start")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently executing /v1/ requests; excess shed with 503 + Retry-After (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT, wait this long for in-flight requests before exiting (0 = wait forever)")
	ingest := fs.Bool("ingest", false, "aggregator mode: accept streamed epoch deltas on POST /v1/ingest/{source} (from inspector-run -stream) and serve each source's live CPG")
	ingestSources := fs.Int("ingest-sources", 0, "with -ingest: max distinct sources (0 = default 256)")
	watchTimeout := fs.Duration("watch-timeout", 0, "cap on the epochs long-poll wait (0 = default 30s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *live && *workload == "" {
		return fmt.Errorf("-live needs -workload (post-mortem -cpg graphs are already complete)")
	}
	if *foldWorkers < 0 {
		return fmt.Errorf("-fold-workers must be >= 0 (got %d)", *foldWorkers)
	}

	// Bind before loading anything: /healthz answers (and /readyz says
	// not-ready) while big gob files decode, so orchestrators probing the
	// daemon distinguish "starting" from "dead". -addr :0 (tests, smoke
	// scripts) still prints the actual port with the announce line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	sopts := provenance.ServerOptions{Timeout: *timeout, MaxInflight: *maxInflight, WatchTimeout: *watchTimeout}
	eopts := provenance.EngineOptions{MaxResults: *maxResults, FoldWorkers: *foldWorkers}
	if *ingest {
		sopts.Ingest = provenance.NewIngestHub(provenance.IngestOptions{
			Engine:     eopts,
			MaxSources: *ingestSources,
		})
	}
	build := func() (*provenance.Server, func(), error) {
		return buildServer(cpgPaths, journalDirs, *cpgDir, *residentBudget, *resultCache,
			*workload, *threads, *sizeFlag, *seed, *live, *liveSlowdown, *lenient,
			sopts, eopts)
	}
	return serve(ln, build, sig, *drainTimeout, os.Stdout)
}

// bootHandler answers during startup: /healthz reports liveness as soon
// as the listener is up; everything else (including /readyz) answers 503
// until the fully built Server is installed.
type bootHandler struct {
	real atomic.Pointer[provenance.Server]
}

func (b *bootHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if srv := b.real.Load(); srv != nil {
		srv.ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
		return
	}
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":"starting up"}`)
}

// serve is the daemon loop: listener up first, then CPGs loaded and the
// real server installed, then wait for a fatal serve error or a shutdown
// signal — on signal, in-flight requests drain (bounded by drainTimeout)
// and the daemon exits cleanly. Factored out of run so tests drive it
// with their own listener and signal channel.
func serve(ln net.Listener, build func() (*provenance.Server, func(), error),
	sig <-chan os.Signal, drainTimeout time.Duration, out *os.File) error {
	boot := &bootHandler{}
	hs := &http.Server{Handler: boot}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	srv, start, err := build()
	if err != nil {
		hs.Close()
		return err
	}
	boot.real.Store(srv)
	srv.SetReady(true)
	if start != nil {
		go start()
	}
	fmt.Fprintf(out, "inspector-serve: serving %v on %s\n", srv.IDs(), ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "inspector-serve: %v: draining in-flight requests (limit %v)\n", s, drainTimeout)
		srv.SetReady(false) // readiness probes steer new traffic away first
		ctx := context.Background()
		if drainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, drainTimeout)
			defer cancel()
		}
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-serveErr // http.ErrServerClosed: the accept loop has exited
		fmt.Fprintln(out, "inspector-serve: drained, exiting")
		return nil
	}
}

// buildServer assembles the engine sources from gob files and/or a
// recorded workload. The post-mortem sources are immutable; a live
// source publishes a new immutable epoch per fold, and each request pins
// one epoch — either way the handler is safe for arbitrary client
// concurrency. The returned start function (nil unless live) launches
// the workload recording; call it once the listener is up.
//
// A corrupt or truncated gob file fails startup with the offending path
// named; with lenient it is logged and skipped so the healthy graphs
// still serve.
func buildServer(cpgPaths, journalDirs []string, cpgDir string, residentBudget int64, resultCache int,
	workload string, threads int, sizeFlag string, seed int64,
	live bool, liveSlowdown time.Duration, lenient bool,
	sopts provenance.ServerOptions, eopts provenance.EngineOptions) (*provenance.Server, func(), error) {
	sources := map[string]provenance.EngineSource{}
	if cpgDir != "" {
		store, err := provenance.OpenDir(cpgDir, provenance.StoreOptions{
			ResidentBudget:      residentBudget,
			ResultCacheCapacity: resultCache,
			Engine:              eopts,
			Lenient:             lenient,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "inspector-serve: "+format+"\n", args...)
			},
		})
		if err != nil {
			return nil, nil, err
		}
		for id, src := range store.Sources() {
			if _, dup := sources[id]; dup {
				return nil, nil, fmt.Errorf("duplicate cpg id %q (from %s)", id, cpgDir)
			}
			sources[id] = src
		}
		sopts.Store = store
		fmt.Fprintf(os.Stderr, "inspector-serve: cpgdir %s: serving %d CPG files lazily (resident budget %d bytes)\n",
			cpgDir, store.Len(), residentBudget)
	}
	for _, dir := range journalDirs {
		id := filepath.Base(filepath.Clean(dir))
		if _, dup := sources[id]; dup {
			return nil, nil, fmt.Errorf("duplicate journal id %q (from %s)", id, dir)
		}
		rep, err := journal.Recover(dir, journal.RecoverOptions{})
		if err != nil {
			if lenient {
				fmt.Fprintf(os.Stderr, "inspector-serve: skipping journal %s: %v (-lenient)\n", dir, err)
				continue
			}
			return nil, nil, fmt.Errorf("journal %s: %w", dir, err)
		}
		switch {
		case rep.Sealed:
			fmt.Fprintf(os.Stderr, "inspector-serve: journal %s: recovered %d epochs (sealed)\n", id, rep.Epoch)
		case rep.Torn != nil:
			fmt.Fprintf(os.Stderr, "inspector-serve: journal %s: recovered %d epochs, torn tail at %s (serving degraded prefix)\n",
				id, rep.Epoch, rep.Torn)
		default:
			fmt.Fprintf(os.Stderr, "inspector-serve: journal %s: recovered %d epochs (unsealed: run never closed; serving degraded prefix)\n",
				id, rep.Epoch)
		}
		sources[id] = provenance.StaticSource(provenance.NewEngine(rep.Analysis, eopts))
	}
	for _, path := range cpgPaths {
		id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if _, dup := sources[id]; dup {
			return nil, nil, fmt.Errorf("duplicate cpg id %q (from %s)", id, path)
		}
		g, err := loadCPG(path)
		if err != nil {
			if lenient {
				fmt.Fprintf(os.Stderr, "inspector-serve: skipping %v (-lenient)\n", err)
				continue
			}
			return nil, nil, err
		}
		sources[id] = provenance.StaticSource(provenance.NewEngine(g.Analyze(), eopts))
	}
	var start func()
	if workload != "" {
		if _, dup := sources[workload]; dup {
			return nil, nil, fmt.Errorf("duplicate cpg id %q (from -workload)", workload)
		}
		rt, w, cfg, err := workloadRuntime(workload, threads, sizeFlag, seed)
		if err != nil {
			return nil, nil, err
		}
		if live {
			eng := provenance.NewLiveEngine(rt.Graph(), eopts)
			rt.RegisterCommitHook(func(core.SubID) {
				if liveSlowdown > 0 {
					time.Sleep(liveSlowdown)
				}
				eng.Notify()
			})
			sources[workload] = eng
			start = func() {
				err := w.Run(rt, cfg)
				if cerr := eng.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "inspector-serve: live workload %s failed: %v (serving the recorded prefix)\n", workload, err)
					return
				}
				fmt.Printf("inspector-serve: live workload %s finished (epoch %d, final graph served)\n",
					workload, eng.Epoch())
			}
		} else {
			if err := w.Run(rt, cfg); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", workload, err)
			}
			sources[workload] = provenance.StaticSource(provenance.NewEngine(rt.Graph().Analyze(), eopts))
		}
	}
	if len(sources) == 0 && sopts.Ingest == nil {
		return nil, nil, fmt.Errorf("nothing to serve (need -cpg, -cpgdir, -journal, -workload, or -ingest)")
	}
	return provenance.NewServerSources(sources, sopts), start, nil
}

// loadCPG decodes one gob file, naming the file in every failure so a
// corrupt artifact among many is immediately identifiable.
func loadCPG(path string) (*core.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cpg %s: %w", path, err)
	}
	defer f.Close()
	g, err := core.DecodeGob(f)
	if err != nil {
		return nil, fmt.Errorf("cpg %s: corrupt or truncated: %w", path, err)
	}
	return g, nil
}

// workloadRuntime prepares (but does not run) one workload under
// INSPECTOR.
func workloadRuntime(app string, threads int, sizeFlag string, seed int64) (*threading.Runtime, workloads.Workload, workloads.Config, error) {
	w, err := workloads.Get(app)
	if err != nil {
		return nil, nil, workloads.Config{}, err
	}
	var size workloads.Size
	switch sizeFlag {
	case "small":
		size = workloads.Small
	case "medium":
		size = workloads.Medium
	case "large":
		size = workloads.Large
	default:
		return nil, nil, workloads.Config{}, fmt.Errorf("unknown size %q", sizeFlag)
	}
	cfg := workloads.Config{Size: size, Threads: threads, Seed: seed}
	rt, err := threading.NewRuntime(threading.Options{
		AppName:    app,
		Mode:       threading.ModeInspector,
		MaxThreads: w.MaxThreads(cfg),
	})
	if err != nil {
		return nil, nil, workloads.Config{}, err
	}
	return rt, w, cfg, nil
}
