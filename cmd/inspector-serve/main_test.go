package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/provenance"
)

// writeGob records a tiny two-thread execution and writes its gob.
func writeGob(t *testing.T, path string) {
	t.Helper()
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	rel := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnWrite(100)
	s0, err := r0.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	r1.Acquire(lock)
	r1.OnRead(100)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.EncodeGob(f); err != nil {
		t.Fatal(err)
	}
}

func TestBuildServerFromGobs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "alpha.gob")
	b := filepath.Join(dir, "beta.gob")
	writeGob(t, a)
	writeGob(t, b)

	srv, err := buildServer([]string{a, b}, "", 0, "", 0,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids := srv.IDs()
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Fatalf("ids = %v", ids)
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	res, err := c.Query(context.Background(), "alpha", provenance.Query{
		Kind: provenance.KindTaint, Target: "T0.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Error("no taint flow served from gob-loaded graph")
	}
}

func TestBuildServerErrors(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "x.gob")
	writeGob(t, a)

	if _, err := buildServer(nil, "", 0, "", 0,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("empty server accepted")
	}
	// Two files with the same base name collide.
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(sub, "x.gob")
	writeGob(t, b)
	if _, err := buildServer([]string{a, b}, "", 0, "", 0,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("duplicate ids accepted")
	}
	// Missing file.
	if _, err := buildServer([]string{filepath.Join(dir, "absent.gob")}, "", 0, "", 0,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	// Unknown workload and size.
	if _, err := buildServer(nil, "not-a-workload", 1, "small", 1,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildServer(nil, "histogram", 1, "gigantic", 1,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestBuildServerFromWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload")
	}
	srv, err := buildServer(nil, "histogram", 2, "small", 1,
		provenance.ServerOptions{Timeout: 10 * time.Second},
		provenance.EngineOptions{MaxResults: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	ctx := context.Background()

	cpgs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpgs) != 1 || cpgs[0].ID != "histogram" || cpgs[0].SubComputations == 0 {
		t.Fatalf("list = %+v", cpgs)
	}
	st, err := c.Stats(ctx, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats == nil || st.Stats.SubComputations != cpgs[0].SubComputations {
		t.Errorf("stats disagree with listing: %+v vs %+v", st.Stats, cpgs[0])
	}
	// The page cap holds.
	res, err := c.Query(ctx, "histogram", provenance.Query{Kind: provenance.KindEdges})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) > 100 {
		t.Errorf("page cap exceeded: %d edges", len(res.Edges))
	}
	if res.Total > 100 && res.NextCursor == "" {
		t.Error("truncated page without cursor")
	}
}
