package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/repro/inspector/internal/core"
	"github.com/repro/inspector/internal/cpgfile"
	"github.com/repro/inspector/internal/journal"
	"github.com/repro/inspector/provenance"
)

// writeGob records a tiny two-thread execution and writes its gob.
func writeGob(t *testing.T, path string) {
	t.Helper()
	g := buildGraph(t)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.EncodeGob(f); err != nil {
		t.Fatal(err)
	}
}

// buildGraph records a tiny two-thread execution.
func buildGraph(t *testing.T) *core.Graph {
	t.Helper()
	g := core.NewGraph(2)
	lock := g.NewSyncObject("lock", false)
	rel := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnWrite(100)
	s0, err := r0.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	r1.Acquire(lock)
	r1.OnRead(100)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildServerFromGobs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "alpha.gob")
	b := filepath.Join(dir, "beta.gob")
	writeGob(t, a)
	writeGob(t, b)

	srv, _, err := buildServer([]string{a, b}, nil, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids := srv.IDs()
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Fatalf("ids = %v", ids)
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	res, err := c.Query(context.Background(), "alpha", provenance.Query{
		Kind: provenance.KindTaint, Target: "T0.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Error("no taint flow served from gob-loaded graph")
	}
}

// TestBuildServerFromCPGDir pins the -cpgdir path: columnar files served
// lazily through the Store, with /v1/store reporting cache counters and
// query answers matching the eager gob path.
func TestBuildServerFromCPGDir(t *testing.T) {
	dir := t.TempDir()
	a := buildGraph(t).Analyze()
	for _, id := range []string{"alpha", "beta"} {
		if err := cpgfile.Write(filepath.Join(dir, id+".cpg"), a, cpgfile.Meta{RunID: id}); err != nil {
			t.Fatal(err)
		}
	}
	srv, _, err := buildServer(nil, nil, dir, 1<<20, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids := srv.IDs()
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Fatalf("ids = %v", ids)
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	for i := 0; i < 2; i++ { // second round hits the result cache
		res, err := c.Query(context.Background(), "alpha", provenance.Query{
			Kind: provenance.KindTaint, Target: "T0.0",
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) == 0 {
			t.Error("no taint flow served from cpgdir-loaded graph")
		}
	}
	resp, err := http.Get(ts.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st provenance.StoreStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CPGs != 2 {
		t.Errorf("/v1/store cpgs = %d, want 2", st.CPGs)
	}
	if st.ResultCache.Hits == 0 {
		t.Errorf("repeated query did not hit the result cache: %+v", st.ResultCache)
	}
}

func TestBuildServerErrors(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "x.gob")
	writeGob(t, a)

	if _, _, err := buildServer(nil, nil, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("empty server accepted")
	}
	// Two files with the same base name collide.
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(sub, "x.gob")
	writeGob(t, b)
	if _, _, err := buildServer([]string{a, b}, nil, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("duplicate ids accepted")
	}
	// Missing file.
	if _, _, err := buildServer([]string{filepath.Join(dir, "absent.gob")}, nil, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("missing file accepted")
	}
	// Unknown workload and size.
	if _, _, err := buildServer(nil, nil, "", 0, 0, "not-a-workload", 1, "small", 1, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, _, err := buildServer(nil, nil, "", 0, 0, "histogram", 1, "gigantic", 1, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestBuildServerFromWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload")
	}
	srv, start, err := buildServer(nil, nil, "", 0, 0, "histogram", 2, "small", 1, false, 0, false,
		provenance.ServerOptions{Timeout: 10 * time.Second},
		provenance.EngineOptions{MaxResults: 100})
	if err != nil {
		t.Fatal(err)
	}
	if start != nil {
		t.Fatal("non-live build returned a start function")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	ctx := context.Background()

	cpgs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpgs) != 1 || cpgs[0].ID != "histogram" || cpgs[0].SubComputations == 0 {
		t.Fatalf("list = %+v", cpgs)
	}
	st, err := c.Stats(ctx, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats == nil || st.Stats.SubComputations != cpgs[0].SubComputations {
		t.Errorf("stats disagree with listing: %+v vs %+v", st.Stats, cpgs[0])
	}
	// The page cap holds.
	res, err := c.Query(ctx, "histogram", provenance.Query{Kind: provenance.KindEdges})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) > 100 {
		t.Errorf("page cap exceeded: %d edges", len(res.Edges))
	}
	if res.Total > 100 && res.NextCursor == "" {
		t.Error("truncated page without cursor")
	}
}

// TestBuildServerLiveWorkload is the acceptance check for the daemon's
// live mode: the server is queryable while the workload records (every
// response carries an epoch), and after the workload finishes the final
// epoch serves the complete graph.
func TestBuildServerLiveWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("records a workload")
	}
	srv, start, err := buildServer(nil, nil, "", 0, 0, "histogram", 2, "small", 1, true, 500*time.Microsecond, false,
		provenance.ServerOptions{Timeout: 10 * time.Second},
		provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if start == nil {
		t.Fatal("live build returned no start function")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Queryable before the workload even starts: the initial epoch is an
	// empty-but-valid graph.
	st, err := c.Stats(ctx, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch == 0 {
		t.Fatal("live stats carry no epoch before the workload starts")
	}

	workloadDone := make(chan struct{})
	go func() { start(); close(workloadDone) }()

	// Mid-run: wait for an epoch with sealed sub-computations; the
	// slowdown keeps the recording alive while we poll.
	var mid *provenance.Result
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		mid, err = c.Stats(ctx, "histogram")
		if err != nil {
			t.Fatal(err)
		}
		if mid.Stats.SubComputations > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mid.Stats.SubComputations == 0 {
		t.Fatal("no sealed sub-computations observable during the live run")
	}

	<-workloadDone
	final, err := c.Stats(ctx, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if final.Epoch < mid.Epoch || final.Stats.SubComputations < mid.Stats.SubComputations {
		t.Fatalf("final epoch %d/%d subs regressed from mid-run %d/%d",
			final.Epoch, final.Stats.SubComputations, mid.Epoch, mid.Stats.SubComputations)
	}
	// The final epoch must agree with a post-mortem rebuild of the same
	// deterministic workload.
	post, _, err := buildServer(nil, nil, "", 0, 0, "histogram", 2, "small", 1, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(post)
	defer pts.Close()
	pc := &provenance.Client{BaseURL: pts.URL}
	want, err := pc.Stats(ctx, "histogram")
	if err != nil {
		t.Fatal(err)
	}
	if *final.Stats != *want.Stats {
		t.Fatalf("live final stats %+v != post-mortem stats %+v", final.Stats, want.Stats)
	}
}

// TestCorruptGobRefused is the satellite check for corrupt artifacts: a
// truncated gob fails startup with the offending file named, and
// -lenient skips it while the healthy graphs still serve.
func TestCorruptGobRefused(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.gob")
	writeGob(t, good)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.gob")
	if err := os.WriteFile(bad, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = buildServer([]string{good, bad}, nil, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err == nil {
		t.Fatal("truncated gob accepted")
	}
	if !strings.Contains(err.Error(), "bad.gob") || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("error does not name the broken file: %v", err)
	}

	srv, _, err := buildServer([]string{good, bad}, nil, "", 0, 0, "", 0, "", 0, false, 0, true,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatalf("-lenient still refused: %v", err)
	}
	if ids := srv.IDs(); len(ids) != 1 || ids[0] != "good" {
		t.Errorf("lenient server ids = %v, want [good]", ids)
	}
}

// gateSource holds resolution until released, pinning one request
// in-flight so the drain test can observe it.
type gateSource struct {
	e    *provenance.Engine
	gate chan struct{}
}

func (g gateSource) Engine() *provenance.Engine { <-g.gate; return g.e }

// TestServeGracefulDrain drives the daemon loop through its shutdown
// path: SIGTERM stops accepting, the in-flight request completes, and
// serve returns nil (the process would exit 0).
func TestServeGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	srv := provenance.NewServerSources(map[string]provenance.EngineSource{
		"slow": gateSource{e: provenance.NewEngine(buildGraph(t).Analyze(), provenance.EngineOptions{}), gate: gate},
	}, provenance.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(filepath.Join(t.TempDir(), "serve.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	sig := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ln, func() (*provenance.Server, func(), error) { return srv, nil, nil },
			sig, 30*time.Second, out)
	}()
	base := "http://" + ln.Addr().String()

	// Wait until the real server is installed. /readyz would resolve the
	// gated source's Engine() and block, so probe a path that answers
	// without touching sources: the boot handler 503s it, the real server
	// 404s it.
	waitStatus(t, base+"/v1/cpgs/absent/stats", 404)

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/v1/cpgs/slow/stats")
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	// Give the request time to reach the handler and block on the gate.
	time.Sleep(50 * time.Millisecond)

	sig <- syscall.SIGTERM
	select {
	case err := <-serveDone:
		t.Fatalf("serve returned before the in-flight request finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain", code)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("drained serve returned %v, want nil", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestServeNotReadyWhileLoading checks the startup window: with the
// listener up but CPGs still loading, /healthz answers 200 and /readyz
// answers 503; once loading finishes, /readyz flips to 200.
func TestServeNotReadyWhileLoading(t *testing.T) {
	loading := make(chan struct{})
	srv := provenance.NewServer(map[string]*provenance.Engine{
		"g": provenance.NewEngine(buildGraph(t).Analyze(), provenance.EngineOptions{}),
	}, provenance.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.Create(filepath.Join(t.TempDir(), "serve.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	sig := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serve(ln, func() (*provenance.Server, func(), error) {
			<-loading // a big gob decoding
			return srv, nil, nil
		}, sig, time.Second, out)
	}()
	base := "http://" + ln.Addr().String()

	waitStatus(t, base+"/healthz", 200)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while loading = %d, want 503", resp.StatusCode)
	}
	close(loading)
	waitStatus(t, base+"/readyz", 200)
	sig <- syscall.SIGTERM
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}
}

// waitStatus polls url until it answers with the wanted status.
func waitStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never answered %d (last: %v %v)", url, want, resp, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeJournalDir journals the same tiny two-thread execution
// buildGraph records, into dir/<id>.
func writeJournalDir(t *testing.T, dir string) {
	t.Helper()
	w, err := journal.Create(journal.Options{Dir: dir, Threads: 2, App: "serve-test"})
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGraph(2)
	jr := journal.NewRecorder(g, w, 1)
	hook := jr.CommitHook()
	lock := g.NewSyncObject("lock", false)
	rel := core.SyncEvent{Kind: core.SyncRelease, Object: lock.Ref()}
	r0, err := core.NewRecorder(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.NewRecorder(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.OnWrite(100)
	s0, err := r0.EndSub(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	r0.Release(lock, s0)
	hook(core.SubID{})
	r1.Acquire(lock)
	r1.OnRead(100)
	if _, err := r1.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	hook(core.SubID{})
	if _, err := r0.EndSub(core.SyncEvent{Kind: core.SyncNone}, 0); err != nil {
		t.Fatal(err)
	}
	hook(core.SubID{})
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildServerFromJournal(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "crashed-run")
	writeJournalDir(t, jdir)

	srv, _, err := buildServer(nil, []string{jdir}, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ids := srv.IDs(); len(ids) != 1 || ids[0] != "crashed-run" {
		t.Fatalf("ids = %v", ids)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &provenance.Client{BaseURL: ts.URL}
	res, err := c.Query(context.Background(), "crashed-run", provenance.Query{
		Kind: provenance.KindTaint, Target: "T0.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Error("no taint flow served from journal-recovered graph")
	}

	// A bad journal dir fails startup strictly, and is skipped leniently.
	if _, _, err := buildServer(nil, []string{jdir, t.TempDir()}, "", 0, 0, "", 0, "", 0, false, 0, false,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err == nil {
		t.Error("unrecoverable journal accepted without -lenient")
	}
	if srv2, _, err := buildServer(nil, []string{jdir, t.TempDir()}, "", 0, 0, "", 0, "", 0, false, 0, true,
		provenance.ServerOptions{}, provenance.EngineOptions{}); err != nil {
		t.Errorf("-lenient did not skip the bad journal: %v", err)
	} else if len(srv2.IDs()) != 1 {
		t.Errorf("lenient server ids = %v", srv2.IDs())
	}
}
