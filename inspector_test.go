package inspector_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	inspector "github.com/repro/inspector"
	"github.com/repro/inspector/internal/journal"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	rt, err := inspector.New(inspector.Options{AppName: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	input, err := rt.MapInput("data.txt", []byte("hello provenance"))
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("m")

	rep, err := rt.Run(func(main *inspector.Thread) {
		out := main.Malloc(8)
		child := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			v := uint64(w.Load8(input))
			w.Store64(out, v*2)
			m.Unlock(w)
		})
		main.Join(child)
		m.Lock(main)
		if got := main.Load64(out); got != uint64('h')*2 {
			t.Errorf("out = %d", got)
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() == 0 || rep.TraceBytes == 0 || rep.SubComputations == 0 {
		t.Errorf("report looks empty: %+v", rep)
	}

	cpg := rt.CPG()
	analysis := cpg.Analyze()
	if err := analysis.Verify(); err != nil {
		t.Fatal(err)
	}
	// The child read the input page: provenance from input must exist.
	inputPage := uint64(input) / 4096
	var sawInputRead bool
	for _, sc := range cpg.Subs() {
		if sc.ID.Thread == 1 && sc.ReadSet.Contains(inputPage) {
			sawInputRead = true
		}
	}
	if !sawInputRead {
		t.Error("input page missing from child's read set")
	}
	// And a cross-thread data edge child -> main.
	var sawFlow bool
	for _, e := range analysis.Edges() {
		if e.Kind == inspector.EdgeData && e.From.Thread == 1 && e.To.Thread == 0 {
			sawFlow = true
		}
	}
	if !sawFlow {
		t.Error("no data edge from child to main")
	}

	if _, err := rt.DecodeTraces(); err != nil {
		t.Errorf("DecodeTraces: %v", err)
	}

	var dot bytes.Buffer
	if err := rt.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph CPG") {
		t.Error("DOT output malformed")
	}
	var gob bytes.Buffer
	if err := rt.WriteCPG(&gob); err != nil {
		t.Fatal(err)
	}
	if gob.Len() == 0 {
		t.Error("empty CPG serialization")
	}
}

func TestPublicAPINativeMode(t *testing.T) {
	rt, err := inspector.New(inspector.Options{AppName: "native-test", Native: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(func(main *inspector.Thread) {
		a := main.Malloc(8)
		main.Store64(a, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceBytes != 0 || rep.SubComputations != 0 {
		t.Errorf("native mode recorded provenance: %+v", rep)
	}
	if s, ok := rt.TakeSnapshot(); ok || s != nil {
		t.Error("native mode produced a snapshot")
	}
	if rt.Snapshots() != nil {
		t.Error("native mode has snapshot ring")
	}
}

func TestPublicAPISnapshotMode(t *testing.T) {
	rt, err := inspector.New(inspector.Options{
		AppName:            "snap-test",
		SnapshotMode:       true,
		SnapshotEverySyncs: 2,
		SnapshotSlots:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *inspector.Thread) {
		addr := main.Malloc(8)
		for i := 0; i < 20; i++ {
			m.Lock(main)
			main.Store64(addr, uint64(i))
			m.Unlock(main)
		}
	}); err != nil {
		t.Fatal(err)
	}
	snaps := rt.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	if len(snaps) > 3 {
		t.Errorf("ring exceeded slots: %d", len(snaps))
	}
	for i, s := range snaps {
		if err := s.Cut.Validate(rt.CPG()); err != nil {
			t.Errorf("snapshot %d: %v", i, err)
		}
	}
	// Manual snapshot on top: with snapshot mode on, ok is true and the
	// snapshot is never nil.
	if s, ok := rt.TakeSnapshot(); !ok || s == nil {
		t.Errorf("manual snapshot = %v, %v", s, ok)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []inspector.Options{
		{MaxThreads: -1},
		{PageSize: -4096},
		{PageSize: 32},   // below the minimum
		{PageSize: 100},  // not a power of two
		{PageSize: 4095}, // off by one
		{SnapshotSlots: -2},
	}
	for _, opts := range bad {
		rt, err := inspector.New(opts)
		if err == nil || rt != nil {
			t.Errorf("New(%+v) accepted nonsense options", opts)
			continue
		}
		if !errors.Is(err, inspector.ErrBadOptions) {
			t.Errorf("New(%+v) error %v does not wrap ErrBadOptions", opts, err)
		}
	}
	// Zero values and valid explicit settings still pass.
	good := []inspector.Options{
		{},
		{MaxThreads: 2, PageSize: 1024, SnapshotSlots: 0},
		{PageSize: 64},
		{SnapshotMode: true, SnapshotSlots: 2},
	}
	for _, opts := range good {
		if _, err := inspector.New(opts); err != nil {
			t.Errorf("New(%+v): %v", opts, err)
		}
	}
}

func TestRuntimeQuery(t *testing.T) {
	rt, err := inspector.New(inspector.Options{AppName: "query-test"})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *inspector.Thread) {
		addr := main.Malloc(8)
		main.Store64(addr, 1)
		child := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			w.Store64(addr, w.Load64(addr)+1)
			m.Unlock(w)
		})
		main.Join(child)
		m.Lock(main)
		_ = main.Load64(addr)
		m.Unlock(main)
	}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	res, err := rt.Query(ctx, inspector.Query{Kind: inspector.QueryStats})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.SubComputations == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}

	res, err = rt.Query(ctx, inspector.Query{Kind: inspector.QueryVerify})
	if err != nil || res.Valid == nil || !*res.Valid {
		t.Errorf("verify = %+v, %v", res, err)
	}

	// The same engine answers concurrent queries; results agree with the
	// direct core API.
	want := rt.CPG().Analyze().TaintedBy(inspector.SubID{Thread: 1, Alpha: 0})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rt.Query(ctx, inspector.Query{Kind: inspector.QueryTaint, Target: "T1.0"})
			if err != nil || len(res.IDs) != len(want) {
				t.Errorf("concurrent taint = %d ids, %v (want %d)", len(res.IDs), err, len(want))
			}
		}()
	}
	wg.Wait()

	// Bad queries surface the provenance package's validation.
	if _, err := rt.Query(ctx, inspector.Query{Kind: "nope"}); err == nil {
		t.Error("unknown query kind accepted")
	}
}

func TestPublicAPIJournal(t *testing.T) {
	dir := t.TempDir()
	rt, err := inspector.New(inspector.Options{
		AppName:      "journal-test",
		MaxThreads:   4,
		Journal:      dir,
		JournalFsync: "always",
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rt.NewMutex("m")
	if _, err := rt.Run(func(main *inspector.Thread) {
		out := main.Malloc(8)
		child := main.Spawn(func(w *inspector.Thread) {
			m.Lock(w)
			w.Store64(out, 7)
			m.Unlock(w)
		})
		main.Join(child)
		m.Lock(main)
		_ = main.Load64(out)
		m.Unlock(main)
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := journal.Recover(dir, journal.RecoverOptions{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.Sealed || rep.Degraded() {
		t.Fatalf("clean run's journal: sealed=%v degraded=%v", rep.Sealed, rep.Degraded())
	}
	if rep.Header.App != "journal-test" {
		t.Errorf("journal header app = %q", rep.Header.App)
	}
	var want, got bytes.Buffer
	if err := rt.CPG().EncodeJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := rep.Graph.EncodeJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered graph diverges from the runtime's CPG")
	}
}

func TestJournalOptionsValidation(t *testing.T) {
	bad := []inspector.Options{
		{Journal: "x", Native: true},
		{JournalFsync: "sometimes"},
		{JournalFsync: "interval:0"},
		{JournalEverySeals: -1},
	}
	for _, opts := range bad {
		if _, err := inspector.New(opts); !errors.Is(err, inspector.ErrBadOptions) {
			t.Errorf("New(%+v) error %v does not wrap ErrBadOptions", opts, err)
		}
	}
}
